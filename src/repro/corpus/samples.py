"""Hand-written corpus programs in the supported C subset.

Each sample is a complete program with a deterministic ``main`` so the
equivalence tests can compare plain-VM, decompressed, in-place-interpreted,
and JIT-modelled executions output-for-output.  The programs are chosen to
exercise the idioms the paper's benchmarks (lcc, gcc, wc, word processors)
are made of: token scanning, table-driven dispatch, pointer chasing,
recursion, arithmetic kernels, string processing, and struct manipulation.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["SAMPLES", "sample_names", "get_sample"]


_WC = r"""
/* wc: count lines, words, bytes of a fixed input - the paper's small
   benchmark analogue. */
char input[] =
    "the quick brown fox jumps over the lazy dog\n"
    "pack my box with five dozen liquor jugs\n"
    "how vexingly quick daft zebras jump\n"
    "sphinx of black quartz judge my vow\n";

int is_space(int c) { return c == ' ' || c == '\n' || c == '\t'; }

int main(void) {
    int lines = 0, words = 0, bytes = 0;
    int in_word = 0;
    char *p = input;
    while (*p) {
        bytes++;
        if (*p == '\n') lines++;
        if (is_space(*p)) {
            in_word = 0;
        } else if (!in_word) {
            in_word = 1;
            words++;
        }
        p++;
    }
    print_int(lines); putchar(' ');
    print_int(words); putchar(' ');
    print_int(bytes); putchar('\n');
    return 0;
}
"""


_SORT = r"""
/* sort: three sorting algorithms cross-checked on the same data. */
int data1[32], data2[32], data3[32];

unsigned seed = 12345u;
int next_rand(void) {
    seed = seed * 1103515245u + 12345u;
    return (int)((seed >> 16) & 0x7fff);
}

void fill(int *a, int n) {
    seed = 12345u;
    for (int i = 0; i < n; i++) a[i] = next_rand() % 1000;
}

void insertion_sort(int *a, int n) {
    for (int i = 1; i < n; i++) {
        int key = a[i];
        int j = i - 1;
        while (j >= 0 && a[j] > key) { a[j + 1] = a[j]; j--; }
        a[j + 1] = key;
    }
}

void sift_down(int *a, int start, int end) {
    int root = start;
    while (2 * root + 1 <= end) {
        int child = 2 * root + 1;
        int swap = root;
        if (a[swap] < a[child]) swap = child;
        if (child + 1 <= end && a[swap] < a[child + 1]) swap = child + 1;
        if (swap == root) return;
        int t = a[root]; a[root] = a[swap]; a[swap] = t;
        root = swap;
    }
}

void heap_sort(int *a, int n) {
    for (int start = (n - 2) / 2; start >= 0; start--) sift_down(a, start, n - 1);
    for (int end = n - 1; end > 0; end--) {
        int t = a[end]; a[end] = a[0]; a[0] = t;
        sift_down(a, 0, end - 1);
    }
}

void quick_sort(int *a, int lo, int hi) {
    if (lo >= hi) return;
    int pivot = a[(lo + hi) / 2];
    int i = lo, j = hi;
    while (i <= j) {
        while (a[i] < pivot) i++;
        while (a[j] > pivot) j--;
        if (i <= j) {
            int t = a[i]; a[i] = a[j]; a[j] = t;
            i++; j--;
        }
    }
    quick_sort(a, lo, j);
    quick_sort(a, i, hi);
}

int checksum(int *a, int n) {
    int h = 0;
    for (int i = 0; i < n; i++) h = h * 31 + a[i];
    return h;
}

int main(void) {
    fill(data1, 32); fill(data2, 32); fill(data3, 32);
    insertion_sort(data1, 32);
    heap_sort(data2, 32);
    quick_sort(data3, 0, 31);
    for (int i = 0; i < 32; i++) {
        if (data1[i] != data2[i] || data2[i] != data3[i]) {
            print_str("MISMATCH\n");
            return 1;
        }
    }
    print_int(checksum(data1, 32));
    putchar('\n');
    return 0;
}
"""


_CALC = r"""
/* calc: a recursive-descent expression evaluator - a miniature of the
   lcc-style front ends the paper compresses. */
char *src;

int peek(void) { return *src; }
int advance(void) { int c = *src; if (c) src++; return c; }
void skip_ws(void) { while (peek() == ' ') advance(); }

int parse_expr(void);

int parse_number(void) {
    int v = 0;
    while (peek() >= '0' && peek() <= '9') v = v * 10 + (advance() - '0');
    return v;
}

int parse_primary(void) {
    skip_ws();
    if (peek() == '(') {
        advance();
        int v = parse_expr();
        skip_ws();
        if (peek() == ')') advance();
        return v;
    }
    if (peek() == '-') { advance(); return -parse_primary(); }
    return parse_number();
}

int parse_term(void) {
    int v = parse_primary();
    for (;;) {
        skip_ws();
        int c = peek();
        if (c == '*') { advance(); v = v * parse_primary(); }
        else if (c == '/') { advance(); v = v / parse_primary(); }
        else if (c == '%') { advance(); v = v % parse_primary(); }
        else return v;
    }
}

int parse_expr(void) {
    int v = parse_term();
    for (;;) {
        skip_ws();
        int c = peek();
        if (c == '+') { advance(); v = v + parse_term(); }
        else if (c == '-') { advance(); v = v - parse_term(); }
        else return v;
    }
}

int eval(char *text) { src = text; return parse_expr(); }

int main(void) {
    print_int(eval("1 + 2 * 3"));               putchar('\n');
    print_int(eval("(1 + 2) * (3 + 4)"));       putchar('\n');
    print_int(eval("100 / 7 + 100 % 7"));       putchar('\n');
    print_int(eval("-5 * -5 - 5"));             putchar('\n');
    print_int(eval("((2*3)+(4*5))*(6-(7-8))")); putchar('\n');
    return 0;
}
"""


_LZSS = r"""
/* lzss: a toy LZ compressor + decompressor round-trip - the gzip-like
   workload in the paper's own pipeline. */
char text[] =
    "abracadabra abracadabra alakazam abracadabra alakazam abra "
    "the rain in spain stays mainly in the plain the rain in spain";

char out_buf[512];
char back_buf[512];
int out_len = 0;

void emit(int c) { out_buf[out_len++] = (char)c; }

int compress_lz(char *input, int n) {
    int pos = 0;
    out_len = 0;
    while (pos < n) {
        int best_len = 0, best_dist = 0;
        int start = pos - 63;
        if (start < 0) start = 0;
        for (int cand = start; cand < pos; cand++) {
            int len = 0;
            while (len < 15 && pos + len < n && input[cand + len] == input[pos + len])
                len++;
            if (len > best_len) { best_len = len; best_dist = pos - cand; }
        }
        if (best_len >= 3) {
            emit(1);
            emit(best_dist);
            emit(best_len);
            pos += best_len;
        } else {
            emit(0);
            emit(input[pos]);
            pos++;
        }
    }
    return out_len;
}

int decompress_lz(char *dst) {
    int di = 0;
    for (int i = 0; i < out_len; ) {
        if (out_buf[i] == 1) {
            int dist = out_buf[i + 1];
            int len = out_buf[i + 2];
            for (int k = 0; k < len; k++) { dst[di] = dst[di - dist]; di++; }
            i += 3;
        } else {
            dst[di++] = out_buf[i + 1];
            i += 2;
        }
    }
    return di;
}

int main(void) {
    int n = 0;
    while (text[n]) n++;
    int packed = compress_lz(text, n);
    int restored = decompress_lz(back_buf);
    if (restored != n) { print_str("LENGTH MISMATCH\n"); return 1; }
    for (int i = 0; i < n; i++) {
        if (back_buf[i] != text[i]) { print_str("BYTE MISMATCH\n"); return 1; }
    }
    print_int(n); putchar(' ');
    print_int(packed); putchar('\n');
    return 0;
}
"""


_HASHTAB = r"""
/* hashtab: chained hash table with malloc - pointer-heavy workload. */
struct Entry {
    char *key;
    int value;
    struct Entry *next;
};

struct Entry *buckets[64];

unsigned hash_str(char *s) {
    unsigned h = 5381u;
    while (*s) { h = h * 33u + (unsigned)*s; s++; }
    return h;
}

int str_eq(char *a, char *b) {
    while (*a && *a == *b) { a++; b++; }
    return *a == *b;
}

void put(char *key, int value) {
    unsigned b = hash_str(key) % 64u;
    struct Entry *e = buckets[b];
    while (e) {
        if (str_eq(e->key, key)) { e->value = value; return; }
        e = e->next;
    }
    e = (struct Entry *)malloc(sizeof(struct Entry));
    e->key = key;
    e->value = value;
    e->next = buckets[b];
    buckets[b] = e;
}

int get(char *key) {
    unsigned b = hash_str(key) % 64u;
    struct Entry *e = buckets[b];
    while (e) {
        if (str_eq(e->key, key)) return e->value;
        e = e->next;
    }
    return -1;
}

char *names[8];

int main(void) {
    names[0] = "alpha"; names[1] = "beta"; names[2] = "gamma";
    names[3] = "delta"; names[4] = "epsilon"; names[5] = "zeta";
    names[6] = "eta"; names[7] = "theta";
    for (int i = 0; i < 8; i++) put(names[i], i * i);
    put("gamma", 99);
    int total = 0;
    for (int i = 0; i < 8; i++) total += get(names[i]);
    print_int(total); putchar(' ');
    print_int(get("missing")); putchar('\n');
    return 0;
}
"""


_MATRIX = r"""
/* matrix: double-precision kernels (the VM's floating path). */
double a[16], b[16], c[16];

void mat_mul(double *x, double *y, double *z, int n) {
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            double sum = 0.0;
            for (int k = 0; k < n; k++) sum = sum + x[i * n + k] * y[k * n + j];
            z[i * n + j] = sum;
        }
    }
}

double trace(double *m, int n) {
    double t = 0.0;
    for (int i = 0; i < n; i++) t = t + m[i * n + i];
    return t;
}

double power_iter(double *m, int n, int steps) {
    double v[4];
    for (int i = 0; i < n; i++) v[i] = 1.0;
    double norm = 0.0;
    for (int s = 0; s < steps; s++) {
        double w[4];
        for (int i = 0; i < n; i++) {
            double sum = 0.0;
            for (int j = 0; j < n; j++) sum = sum + m[i * n + j] * v[j];
            w[i] = sum;
        }
        norm = 0.0;
        for (int i = 0; i < n; i++) norm = norm + w[i] * w[i];
        double scale = 1.0;
        /* crude normalization without sqrt: divide by the trace instead */
        if (norm > 1.0) scale = 1.0 / norm;
        for (int i = 0; i < n; i++) v[i] = w[i] * scale;
    }
    return norm;
}

int main(void) {
    for (int i = 0; i < 16; i++) {
        a[i] = (double)(i % 5) * 0.5;
        b[i] = (double)((i * 3) % 7) * 0.25;
    }
    mat_mul(a, b, c, 4);
    print_double(trace(c, 4)); putchar('\n');
    print_double(power_iter(c, 4, 10)); putchar('\n');
    return 0;
}
"""


_LIFE = r"""
/* life: Conway's game of life on a small fixed board. */
int board[16][16];
int scratch[16][16];

int neighbours(int r, int c) {
    int count = 0;
    for (int dr = -1; dr <= 1; dr++) {
        for (int dc = -1; dc <= 1; dc++) {
            if (dr == 0 && dc == 0) continue;
            int nr = (r + dr + 16) % 16;
            int nc = (c + dc + 16) % 16;
            count += board[nr][nc];
        }
    }
    return count;
}

void step(void) {
    for (int r = 0; r < 16; r++) {
        for (int c = 0; c < 16; c++) {
            int n = neighbours(r, c);
            if (board[r][c]) scratch[r][c] = (n == 2 || n == 3);
            else scratch[r][c] = (n == 3);
        }
    }
    for (int r = 0; r < 16; r++)
        for (int c = 0; c < 16; c++)
            board[r][c] = scratch[r][c];
}

int population(void) {
    int total = 0;
    for (int r = 0; r < 16; r++)
        for (int c = 0; c < 16; c++)
            total += board[r][c];
    return total;
}

int main(void) {
    /* a glider plus a blinker */
    board[1][2] = 1; board[2][3] = 1;
    board[3][1] = 1; board[3][2] = 1; board[3][3] = 1;
    board[8][8] = 1; board[8][9] = 1; board[8][10] = 1;
    for (int gen = 0; gen < 12; gen++) step();
    print_int(population());
    putchar('\n');
    return 0;
}
"""


_BF = r"""
/* bf: a brainfuck interpreter running a small program - an interpreter
   interpreting, the shape of the paper's OmniVM workload. */
char cells[256];
char prog[] = "++++++++[>++++[>++>+++>+++>+<<<<-]>+>+>->>+[<]<-]"
              ">>.>---.+++++++..+++.>>.<-.<.+++.------.--------.>>+.>++.";

int main(void) {
    int pc = 0, ptr = 0;
    int steps = 0;
    while (prog[pc] && steps < 100000) {
        int op = prog[pc];
        steps++;
        switch (op) {
        case '>': ptr++; break;
        case '<': ptr--; break;
        case '+': cells[ptr]++; break;
        case '-': cells[ptr]--; break;
        case '.': putchar(cells[ptr]); break;
        case '[':
            if (!cells[ptr]) {
                int depth = 1;
                while (depth) {
                    pc++;
                    if (prog[pc] == '[') depth++;
                    if (prog[pc] == ']') depth--;
                }
            }
            break;
        case ']':
            if (cells[ptr]) {
                int depth = 1;
                while (depth) {
                    pc--;
                    if (prog[pc] == ']') depth++;
                    if (prog[pc] == '[') depth--;
                }
            }
            break;
        default: break;
        }
        pc++;
    }
    putchar('\n');
    return 0;
}
"""


_QUEENS = r"""
/* queens: N-queens backtracking (recursion + bit fiddling). */
int count = 0;

void solve(int row, int n, unsigned cols, unsigned diag1, unsigned diag2) {
    if (row == n) { count++; return; }
    for (int c = 0; c < n; c++) {
        unsigned bit = 1u << c;
        unsigned d1 = 1u << (row + c);
        unsigned d2 = 1u << (row - c + n - 1);
        if ((cols & bit) || (diag1 & d1) || (diag2 & d2)) continue;
        solve(row + 1, n, cols | bit, diag1 | d1, diag2 | d2);
    }
}

int main(void) {
    for (int n = 4; n <= 8; n++) {
        count = 0;
        solve(0, n, 0u, 0u, 0u);
        print_int(count);
        putchar(n < 8 ? ' ' : '\n');
    }
    return 0;
}
"""


_STRINGS = r"""
/* strings: a small string library plus a word-frequency report. */
int str_len(char *s) { int n = 0; while (s[n]) n++; return n; }

void str_copy(char *dst, char *src) {
    while ((*dst++ = *src++) != 0) ;
}

int str_cmp(char *a, char *b) {
    while (*a && *a == *b) { a++; b++; }
    return *a - *b;
}

void str_rev(char *s) {
    int i = 0, j = str_len(s) - 1;
    while (i < j) {
        char t = s[i]; s[i] = s[j]; s[j] = t;
        i++; j--;
    }
}

int find(char *haystack, char *needle) {
    int n = str_len(haystack), m = str_len(needle);
    for (int i = 0; i + m <= n; i++) {
        int k = 0;
        while (k < m && haystack[i + k] == needle[k]) k++;
        if (k == m) return i;
    }
    return -1;
}

char buffer[64];

int main(void) {
    str_copy(buffer, "code compression");
    str_rev(buffer);
    print_str(buffer); putchar('\n');
    print_int(find("the quick brown fox", "brown")); putchar('\n');
    print_int(str_cmp("alpha", "alpine")); putchar('\n');
    print_int(str_len(buffer)); putchar('\n');
    return 0;
}
"""



_CRC32 = r"""
/* crc32: table-driven checksum - table generation plus a scan loop. */
unsigned table[256];

void build_table(void) {
    for (int n = 0; n < 256; n++) {
        unsigned c = (unsigned)n;
        for (int k = 0; k < 8; k++) {
            if (c & 1u) c = 0xedb88320u ^ (c >> 1);
            else c = c >> 1;
        }
        table[n] = c;
    }
}

unsigned crc32(char *buf, int len) {
    unsigned c = 0xffffffffu;
    for (int i = 0; i < len; i++) {
        c = table[(c ^ (unsigned char)buf[i]) & 0xffu] ^ (c >> 8);
    }
    return c ^ 0xffffffffu;
}

char message[] = "The quick brown fox jumps over the lazy dog";

int main(void) {
    build_table();
    int len = 0;
    while (message[len]) len++;
    unsigned crc = crc32(message, len);
    print_int((int)(crc % 1000000u));
    putchar('\n');
    return 0;
}
"""


_BST = r"""
/* bst: binary search tree with insert/search/in-order traversal. */
struct Node {
    int key;
    struct Node *left;
    struct Node *right;
};

struct Node *insert(struct Node *root, int key) {
    if (!root) {
        struct Node *n = (struct Node *)malloc(sizeof(struct Node));
        n->key = key;
        n->left = 0;
        n->right = 0;
        return n;
    }
    if (key < root->key) root->left = insert(root->left, key);
    else if (key > root->key) root->right = insert(root->right, key);
    return root;
}

int contains(struct Node *root, int key) {
    while (root) {
        if (key == root->key) return 1;
        root = key < root->key ? root->left : root->right;
    }
    return 0;
}

int depth(struct Node *root) {
    if (!root) return 0;
    int l = depth(root->left);
    int r = depth(root->right);
    return 1 + (l > r ? l : r);
}

int sum_inorder(struct Node *root) {
    if (!root) return 0;
    return sum_inorder(root->left) + root->key + sum_inorder(root->right);
}

int main(void) {
    struct Node *root = 0;
    unsigned seed = 99u;
    for (int i = 0; i < 40; i++) {
        seed = seed * 1103515245u + 12345u;
        root = insert(root, (int)((seed >> 16) % 100u));
    }
    print_int(sum_inorder(root)); putchar(' ');
    print_int(depth(root)); putchar(' ');
    print_int(contains(root, 50)); putchar('\n');
    return 0;
}
"""


_RLE = r"""
/* rle: run-length encoding round trip. */
char rle_input[] = "aaaabbbcccccccccccdddddddeeeeeeeeeeeeeeeeeeeffg";
char packed[128];
char restored[128];

int encode(char *src, char *dst) {
    int di = 0;
    int i = 0;
    while (src[i]) {
        int run = 1;
        while (src[i + run] == src[i] && run < 255) run++;
        dst[di++] = (char)run;
        dst[di++] = src[i];
        i += run;
    }
    dst[di] = 0;
    return di;
}

int decode(char *src, int n, char *dst) {
    int di = 0;
    for (int i = 0; i < n; i += 2) {
        int run = src[i];
        for (int k = 0; k < run; k++) dst[di++] = src[i + 1];
    }
    dst[di] = 0;
    return di;
}

int main(void) {
    int packed_len = encode(rle_input, packed);
    int restored_len = decode(packed, packed_len, restored);
    int ok = 1;
    for (int i = 0; i <= restored_len; i++) {
        if (restored[i] != rle_input[i]) ok = 0;
    }
    print_int(restored_len); putchar(' ');
    print_int(packed_len); putchar(' ');
    print_int(ok); putchar('\n');
    return 0;
}
"""


_STACKVM = r"""
/* stackvm: a tiny stack-machine interpreter interpreting bytecode -
   the most self-referential workload for a paper about compressed VMs. */
enum { OP_HALT, OP_PUSH, OP_ADD, OP_SUB, OP_MUL, OP_DUP, OP_SWAP,
       OP_JNZ, OP_PRINT };

int stack[64];
int sp_;

int run_vm(char *code) {
    int pc = 0;
    sp_ = 0;
    for (;;) {
        int op = code[pc++];
        switch (op) {
        case OP_HALT:
            return sp_ ? stack[sp_ - 1] : 0;
        case OP_PUSH:
            stack[sp_++] = code[pc++];
            break;
        case OP_ADD:
            sp_--; stack[sp_ - 1] += stack[sp_];
            break;
        case OP_SUB:
            sp_--; stack[sp_ - 1] -= stack[sp_];
            break;
        case OP_MUL:
            sp_--; stack[sp_ - 1] *= stack[sp_];
            break;
        case OP_DUP:
            stack[sp_] = stack[sp_ - 1]; sp_++;
            break;
        case OP_SWAP: {
            int t = stack[sp_ - 1];
            stack[sp_ - 1] = stack[sp_ - 2];
            stack[sp_ - 2] = t;
            break;
        }
        case OP_JNZ:
            if (stack[sp_ - 1]) pc = code[pc];
            else pc++;
            break;
        case OP_PRINT:
            print_int(stack[sp_ - 1]);
            putchar(' ');
            break;
        default:
            return -1;
        }
    }
}

char program_bytes[32];

int main(void) {
    /* compute 5! as ((((1*5)*4)*3)*2), then print twice */
    int i = 0;
    program_bytes[i++] = OP_PUSH; program_bytes[i++] = 1;
    program_bytes[i++] = OP_PUSH; program_bytes[i++] = 5;
    program_bytes[i++] = OP_MUL;
    program_bytes[i++] = OP_PUSH; program_bytes[i++] = 4;
    program_bytes[i++] = OP_MUL;
    program_bytes[i++] = OP_PUSH; program_bytes[i++] = 3;
    program_bytes[i++] = OP_MUL;
    program_bytes[i++] = OP_PUSH; program_bytes[i++] = 2;
    program_bytes[i++] = OP_MUL;
    program_bytes[i++] = OP_PRINT;
    program_bytes[i++] = OP_HALT;
    int result = run_vm(program_bytes);
    print_int(result);
    putchar('\n');
    return 0;
}
"""

SAMPLES: Dict[str, str] = {
    "wc": _WC,
    "sort": _SORT,
    "calc": _CALC,
    "lzss": _LZSS,
    "hashtab": _HASHTAB,
    "matrix": _MATRIX,
    "life": _LIFE,
    "bf": _BF,
    "queens": _QUEENS,
    "strings": _STRINGS,
    "crc32": _CRC32,
    "bst": _BST,
    "rle": _RLE,
    "stackvm": _STACKVM,
}


def sample_names():
    """Names of all corpus samples."""
    return sorted(SAMPLES)


def get_sample(name: str) -> str:
    """Source text of one sample program."""
    return SAMPLES[name]
