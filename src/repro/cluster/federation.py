"""Cache federation: fill warm-store misses from hash-ring peers.

Artifact keys are content-addressed SHA-256 digests chained over
(source, unit, stage, config) — see :mod:`repro.pipeline.cache` — so the
same key means the same bytes on every node.  That makes federation
almost embarrassingly simple: on a local miss, ask the peers that the
hash ring says are most likely to hold the key (``cache_peek``), pull
the serialized artifact from the first one that does (``cache_pull``),
verify the CRC32 that rode along, and absorb the bytes into the local
store — a byte copy for the disk backend, never a recompile.

Failure policy: a peer that cannot be reached, times out, or ships bytes
that fail the CRC or do not unpickle to an :class:`Artifact` is simply
skipped — federation is an optimization, and the fallback is always the
same compile the node would have run anyway.  Peer probes are bounded by
``max_probes`` and a short per-peer timeout so a dead neighbor costs
milliseconds, not a hung compile.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Sequence

from ..errors import DecodeError, ServiceError
from ..pipeline.artifacts import Artifact
from ..pipeline.cache import ArtifactCache
from ..service.client import ServiceClient
from .ring import HashRing

__all__ = ["ArtifactPeer", "FederatedCache", "make_peers", "parse_address"]


def parse_address(address: str) -> tuple:
    """``"host:port"`` → ``(host, port)`` with a helpful error."""
    host, sep, port = address.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise ValueError(f"peer address must be host:port, got {address!r}")
    return host, int(port)


class ArtifactPeer:
    """One remote warm store, spoken to over the RSV1 cache ops.

    Thread-safe: the compile worker threads of one node share each peer
    handle, and the underlying :class:`ServiceClient` is one-connection
    sequential, so every exchange holds the peer's lock.  Transport
    errors are absorbed (the client reconnects on the next use) and
    reported as "peer had nothing" — the caller's fallback is a local
    compile, never an exception.
    """

    def __init__(self, address: str, timeout: float = 2.0,
                 retries: int = 1) -> None:
        self.address = address
        host, port = parse_address(address)
        self._client = ServiceClient(host, port, timeout=timeout,
                                     retries=retries)
        self._lock = threading.Lock()

    def close(self) -> None:
        with self._lock:
            self._client.close()

    def peek(self, key: str) -> Optional[int]:
        """Entry size on the peer, or ``None`` (absent or unreachable)."""
        try:
            with self._lock:
                return self._client.cache_peek(key)
        except (ServiceError, DecodeError, OSError):
            return None

    def pull(self, key: str) -> Optional[bytes]:
        """CRC-verified artifact bytes, or ``None`` on absence/failure."""
        try:
            with self._lock:
                return self._client.cache_pull(key)
        except (ServiceError, DecodeError, OSError):
            return None


class FederatedCache(ArtifactCache):
    """A local artifact cache that fills misses from cluster peers.

    Wraps any :class:`ArtifactCache` backend; ``get`` tries the local
    store first, then walks the hash ring's preference order for the
    key, peeking before pulling so absent keys cost one small round
    trip per probed peer.  Writes go to the local store only — peers
    pull from us symmetrically, nobody pushes.

    ``peek_bytes`` deliberately consults only the local store: it is the
    read the server's ``cache_peek``/``cache_pull`` ops use, so peer
    probes terminate at one hop and can never recurse around the ring.
    """

    def __init__(self, local: ArtifactCache,
                 peers: Sequence[ArtifactPeer],
                 max_probes: Optional[int] = None,
                 replicas: int = 32) -> None:
        super().__init__()
        self.local = local
        self.peers = list(peers)
        self.max_probes = len(self.peers) if max_probes is None else max_probes
        self._by_address = {peer.address: peer for peer in self.peers}
        self._ring = HashRing(self._by_address, replicas=replicas)
        # Federation accounting, mutated under the inherited lock.
        self._probes = 0
        self._peek_hits = 0
        self._fills = 0
        self._fill_bytes = 0
        self._rejected = 0

    # -- ArtifactCache interface -------------------------------------------

    def get(self, key: str) -> Optional[Artifact]:
        artifact = self.local.get(key)
        if artifact is not None:
            with self._lock:
                self.hits += 1
            return artifact
        artifact = self._fill_from_peers(key)
        with self._lock:
            if artifact is None:
                self.misses += 1
            else:
                self.hits += 1
        return artifact

    def put(self, key: str, artifact: Artifact) -> None:
        self.local.put(key, artifact)

    def flush(self) -> None:
        self.local.flush()

    def peek_bytes(self, key: str) -> Optional[bytes]:
        return self.local.peek_bytes(key)  # local-only: no ring recursion

    def absorb_bytes(self, key: str, blob: bytes) -> Optional[Artifact]:
        return self.local.absorb_bytes(key, blob)

    def close(self) -> None:
        for peer in self.peers:
            peer.close()

    # -- peer fill ---------------------------------------------------------

    def _fill_from_peers(self, key: str) -> Optional[Artifact]:
        for address in self._ring.preference(key)[: self.max_probes]:
            peer = self._by_address[address]
            with self._lock:
                self._probes += 1
            if peer.peek(key) is None:
                continue
            with self._lock:
                self._peek_hits += 1
            blob = peer.pull(key)
            if blob is None:
                continue  # vanished/unreachable between peek and pull
            artifact = self.local.absorb_bytes(key, blob)
            if artifact is None:
                with self._lock:
                    self._rejected += 1  # bytes did not validate
                continue
            with self._lock:
                self._fills += 1
                self._fill_bytes += len(blob)
            return artifact
        return None

    # -- stats -------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            federation = {
                "peers": len(self.peers),
                "probes": self._probes,
                "peek_hits": self._peek_hits,
                "fills": self._fills,
                "fill_bytes": self._fill_bytes,
                "rejected": self._rejected,
            }
            top = {"hits": self.hits, "misses": self.misses}
        top["federation"] = federation
        top["local"] = self.local.stats()
        return top


def make_peers(addresses: Sequence[str], timeout: float = 2.0
               ) -> List[ArtifactPeer]:
    """Peer handles for a ``host:port`` address list (order-preserving)."""
    return [ArtifactPeer(address, timeout=timeout) for address in addresses]
