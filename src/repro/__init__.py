"""repro — a reproduction of "Code Compression" (PLDI 1997).

The paper's two compressors and everything they stand on, from scratch:

* :mod:`repro.cfront` — a C-subset compiler front end (the lcc stand-in);
* :mod:`repro.ir` — lcc-style tree IR and AST lowering;
* :mod:`repro.vm` — a RISC virtual machine (the OmniVM stand-in) with
  binary encoding, assembler, and interpreter;
* :mod:`repro.codegen` — IR-to-VM code generation, including the de-tuned
  abstract machines of the paper's ablation;
* :mod:`repro.compress` — MTF, canonical Huffman, LZ77, a deflate-like
  container, and an arithmetic coder, all from scratch;
* :mod:`repro.wire` — the wire format (patternize + split streams + MTF +
  Huffman + LZ);
* :mod:`repro.brisc` — BRISC: operand specialization, opcode combination,
  the B = P − W greedy dictionary builder, the order-1 Markov opcode
  model, and in-place interpretation of the compressed code;
* :mod:`repro.jit` — the template-splicing BRISC-to-native JIT;
* :mod:`repro.native` — synthetic Pentium/PowerPC/SPARC-like targets;
* :mod:`repro.pipeline` — the staged toolchain: typed artifacts,
  content-addressed caching, and parallel batch compilation;
* :mod:`repro.corpus` — benchmark programs and a synthetic generator;
* :mod:`repro.system` — delivery-latency and paging scenario models;
* :mod:`repro.bench` — the measurement runners behind every table;
* :mod:`repro.errors` — the typed decode-error taxonomy and resource
  limits every container decoder enforces;
* :mod:`repro.faults` — the deterministic fault-injection harness behind
  ``python -m repro fuzz``.

Quick start::

    import repro

    program = repro.compile_c("int main(void){ print_int(6*7); return 0; }")
    print(repro.run(program).output)            # 42

    compressed = repro.brisc.compress(program)
    print(repro.brisc.run_image(compressed.image.blob).output)  # 42
"""

from . import (
    bench, brisc, cfront, codegen, compress, corpus, errors, faults, ir,
    jit, native, pipeline, system, vm, wire,
)
from .cfront import compile_to_ast
from .codegen import generate_program
from .errors import (
    CorruptStreamError, DecodeError, ResourceLimitError, ResourceLimits,
    TruncatedStreamError, UnsupportedFormatError,
)
from .ir import lower_unit
from .pipeline import Toolchain, default_toolchain
from .vm import run_program as run
from .vm.instr import VMProgram

__version__ = "1.0.0"

__all__ = [
    "CorruptStreamError", "DecodeError", "ResourceLimitError",
    "ResourceLimits", "Toolchain", "TruncatedStreamError",
    "UnsupportedFormatError", "VMProgram", "bench", "brisc", "cfront",
    "codegen", "compile_c", "compress", "corpus", "default_toolchain",
    "errors", "faults", "ir", "jit", "native", "pipeline", "run", "system",
    "vm", "wire",
]


def compile_c(source: str, name: str = "<input>") -> VMProgram:
    """Compile C source all the way to a linked VM program.

    Routed through the shared pipeline toolchain, so repeated compiles of
    the same source are served from the artifact cache.
    """
    return default_toolchain().compile(source, name=name,
                                       stages=("codegen",)).program
