"""Adaptive arithmetic coding (order-0 and order-1 byte models).

The paper's design-space section places arithmetic coding at the
"compresses best / hardest to interpret" extreme: it codes fractions of a
bit per symbol but forces decompression before execution (the authors used
it per-function).  This module implements a classic 32-bit range arithmetic
coder with adaptive frequency models so the design-space benchmark
(`benchmarks/bench_design_space.py`) can place that extreme on the curve,
and so the wire container can offer it as a ratio-over-speed codec
(``pack_streams(..., codec="arith")``).

The coder follows Witten, Neal & Cleary (CACM 1987), the paper's citation.
The streaming classes (:class:`AdaptiveModel`, :class:`ArithmeticEncoder`,
:class:`ArithmeticDecoder`) are the readable reference implementation;
:func:`compress`/:func:`decompress` are batch kernels in the style of the
other table-driven compressors in this package: the whole coder loop runs
in one function frame with the model state in local lists, Fenwick
prefix/update walks driven by precomputed per-byte index tables
(:data:`_PREFIX_PATH`/:data:`_UPDATE_PATH`), and bits accumulated in a
single int that flushes whole bytes at a time.  The emitted bitstream is
bit-for-bit identical to the streaming classes' (pinned by
``tests/golden/arith1.bin`` and a cross-check property test).
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import TruncatedStreamError
from .bitio import BitReader, BitWriter

__all__ = ["AdaptiveModel", "ArithmeticEncoder", "ArithmeticDecoder",
           "compress", "decompress"]

_CODE_BITS = 32
_TOP = (1 << _CODE_BITS) - 1
_HALF = 1 << (_CODE_BITS - 1)
_QUARTER = 1 << (_CODE_BITS - 2)
_THREE_QUARTERS = _HALF + _QUARTER
_MAX_TOTAL = 1 << 16


class AdaptiveModel:
    """Adaptive frequency model over ``size`` symbols (plus implicit EOF).

    Frequencies start at 1 (Laplace smoothing) and increment on use; when
    the total exceeds ``_MAX_TOTAL`` all counts are halved, which also
    gives the model mild recency weighting.  ``freq`` stays a plain list
    of per-symbol counts; a Fenwick tree over the same counts serves the
    cumulative queries.
    """

    def __init__(self, size: int) -> None:
        self.size = size
        self.freq = [1] * size
        self.total = size
        # Highest power of two <= size, for the find() descend.
        self._topbit = 1 << (size.bit_length() - 1) if size else 0
        self._rebuild()

    def _rebuild(self) -> None:
        """Recompute the Fenwick tree from ``freq`` (init and halving)."""
        size = self.size
        tree = [0] * (size + 1)
        for i, f in enumerate(self.freq):
            j = i + 1
            while j <= size:
                tree[j] += f
                j += j & -j
        self._tree = tree

    def _prefix(self, count: int) -> int:
        """Sum of the first ``count`` frequencies."""
        tree = self._tree
        acc = 0
        while count:
            acc += tree[count]
            count &= count - 1
        return acc

    def cumulative(self, symbol: int) -> "tuple[int, int, int]":
        """Return (low, high, total) cumulative counts for ``symbol``."""
        low = self._prefix(symbol)
        return low, low + self.freq[symbol], self.total

    def find(self, scaled: int) -> int:
        """Return the symbol whose cumulative range contains ``scaled``."""
        if scaled >= self.total:
            raise ValueError("scaled value outside model total")
        # Largest sym with prefix(sym) <= scaled: descend the tree.
        tree = self._tree
        pos = 0
        rem = scaled
        mask = self._topbit
        size = self.size
        while mask:
            nxt = pos + mask
            if nxt <= size and tree[nxt] <= rem:
                rem -= tree[nxt]
                pos = nxt
            mask >>= 1
        return pos

    def update(self, symbol: int) -> None:
        """Record one occurrence of ``symbol``."""
        self.freq[symbol] += 32
        self.total += 32
        if self.total >= _MAX_TOTAL:
            self.total = 0
            for i, f in enumerate(self.freq):
                self.freq[i] = (f + 1) // 2
                self.total += self.freq[i]
            self._rebuild()
        else:
            tree = self._tree
            size = self.size
            j = symbol + 1
            while j <= size:
                tree[j] += 32
                j += j & -j


class ArithmeticEncoder:
    """Streaming arithmetic encoder writing to a :class:`BitWriter`."""

    def __init__(self, writer: BitWriter) -> None:
        self.writer = writer
        self.low = 0
        self.high = _TOP
        self.pending = 0

    def _emit(self, bit: int) -> None:
        # One batched write: the decided bit, then ``pending`` opposite
        # bits — e.g. pending=3, bit=1 emits 1000, bit=0 emits 0111.
        pending = self.pending
        if pending:
            value = (1 << pending) if bit else ((1 << pending) - 1)
            self.writer.write_bits(value, pending + 1)
            self.pending = 0
        else:
            self.writer.write_bit(bit)

    def encode(self, model: AdaptiveModel, symbol: int) -> None:
        """Encode ``symbol`` under ``model`` and update the model."""
        low_c, high_c, total = model.cumulative(symbol)
        span = self.high - self.low + 1
        self.high = self.low + span * high_c // total - 1
        self.low = self.low + span * low_c // total
        while True:
            if self.high < _HALF:
                self._emit(0)
            elif self.low >= _HALF:
                self._emit(1)
                self.low -= _HALF
                self.high -= _HALF
            elif self.low >= _QUARTER and self.high < _THREE_QUARTERS:
                self.pending += 1
                self.low -= _QUARTER
                self.high -= _QUARTER
            else:
                break
            self.low <<= 1
            self.high = (self.high << 1) | 1
        model.update(symbol)

    def finish(self) -> None:
        """Flush the final interval disambiguation bits."""
        self.pending += 1
        if self.low < _QUARTER:
            self._emit(0)
        else:
            self._emit(1)


class ArithmeticDecoder:
    """Streaming arithmetic decoder reading from a :class:`BitReader`."""

    def __init__(self, reader: BitReader) -> None:
        self.reader = reader
        self.low = 0
        self.high = _TOP
        self.code = 0
        self._exhausted = False
        for _ in range(_CODE_BITS):
            self.code = (self.code << 1) | self._read_bit()

    def _read_bit(self) -> int:
        if self._exhausted:
            return 0
        try:
            return self.reader.read_bit()
        except EOFError:
            # Trailing zeros are implicit after the final flush; remember
            # EOF so the tail doesn't pay an exception per bit.
            self._exhausted = True
            return 0

    def decode(self, model: AdaptiveModel) -> int:
        """Decode one symbol under ``model`` and update the model."""
        span = self.high - self.low + 1
        scaled = ((self.code - self.low + 1) * model.total - 1) // span
        symbol = model.find(scaled)
        low_c, high_c, total = model.cumulative(symbol)
        self.high = self.low + span * high_c // total - 1
        self.low = self.low + span * low_c // total
        while True:
            if self.high < _HALF:
                pass
            elif self.low >= _HALF:
                self.low -= _HALF
                self.high -= _HALF
                self.code -= _HALF
            elif self.low >= _QUARTER and self.high < _THREE_QUARTERS:
                self.low -= _QUARTER
                self.high -= _QUARTER
                self.code -= _QUARTER
            else:
                break
            self.low <<= 1
            self.high = (self.high << 1) | 1
            self.code = (self.code << 1) | self._read_bit()
        model.update(symbol)
        return symbol


# ---------------------------------------------------------------------------
# batch kernels
# ---------------------------------------------------------------------------

#: Fenwick prefix-sum walk per byte value: the tree indices summed by
#: ``AdaptiveModel._prefix(b)``.  Static for the 256-symbol model, so
#: every cumulative lookup is a table-driven walk over at most 8 indices
#: with no index arithmetic in the hot loop.
_PREFIX_PATH: List[tuple] = []
for _b in range(256):
    _path = []
    _c = _b
    while _c:
        _path.append(_c)
        _c &= _c - 1
    _PREFIX_PATH.append(tuple(_path))

#: Fenwick point-update walk per byte value: the tree indices bumped by
#: ``AdaptiveModel.update(b)`` (tree size 256).
_UPDATE_PATH: List[tuple] = []
for _b in range(256):
    _path = []
    _j = _b + 1
    while _j <= 256:
        _path.append(_j)
        _j += _j & -_j
    _UPDATE_PATH.append(tuple(_path))
del _b, _c, _j, _path


def _fresh_context() -> List:
    """A new 256-symbol adaptive context: [freq list, Fenwick tree, total].

    Initial counts are all 1, for which the Fenwick cell at index ``j``
    holds ``j & -j`` (the size of its range).
    """
    return [[1] * 256, [0] + [j & -j for j in range(1, 257)], 256]


def _rescale(freq: List[int], tree: List[int]) -> int:
    """Halve every count (as ``AdaptiveModel`` does at ``_MAX_TOTAL``),
    rebuild the tree, and return the new total."""
    total = 0
    for i, f in enumerate(freq):
        freq[i] = (f + 1) // 2
        total += freq[i]
    for j in range(1, 257):
        tree[j] = 0
    for i, f in enumerate(freq):
        j = i + 1
        while j <= 256:
            tree[j] += f
            j += j & -j
    return total


def compress(data: bytes, order: int = 0) -> bytes:
    """Arithmetic-code ``data`` with an adaptive byte model.

    ``order=0`` uses a single model; ``order=1`` conditions each byte's
    model on the previous byte (256 models), the analogue of the paper's
    order-1 Markov opcode contexts.  Batch kernel: bit-identical to
    feeding :class:`ArithmeticEncoder` one symbol at a time.
    """
    if order not in (0, 1):
        raise ValueError("only order 0 and 1 models are provided")
    out = bytearray()
    # Bit accumulator, MSB-first (same discipline as BitWriter): the
    # 32-bit length prefix, then the coded bits.
    acc = len(data)
    nbits = 32
    low = 0
    high = _TOP
    pending = 0

    contexts: List[Optional[List]] = [None] * 256
    ctx = _fresh_context() if order == 0 else None
    prev = 0
    prefix_path = _PREFIX_PATH
    update_path = _UPDATE_PATH

    for b in data:
        if order:
            ctx = contexts[prev]
            if ctx is None:
                ctx = contexts[prev] = _fresh_context()
            prev = b
        freq, tree, total = ctx
        low_c = 0
        for j in prefix_path[b]:
            low_c += tree[j]
        high_c = low_c + freq[b]
        span = high - low + 1
        high = low + span * high_c // total - 1
        low = low + span * low_c // total
        while True:
            if high < _HALF:
                bit = 0
            elif low >= _HALF:
                bit = 1
                low -= _HALF
                high -= _HALF
            elif low >= _QUARTER and high < _THREE_QUARTERS:
                pending += 1
                low = (low - _QUARTER) << 1
                high = ((high - _QUARTER) << 1) | 1
                continue
            else:
                break
            # Emit the decided bit plus ``pending`` opposite bits.
            if pending:
                acc = ((acc << (pending + 1))
                       | ((1 << pending) if bit else ((1 << pending) - 1)))
                nbits += pending + 1
                pending = 0
            else:
                acc = (acc << 1) | bit
                nbits += 1
            low <<= 1
            high = (high << 1) | 1
        if nbits >= 4096:
            rem = nbits & 7
            out += (acc >> rem).to_bytes(nbits >> 3, "big")
            acc &= (1 << rem) - 1
            nbits = rem
        # Model update (+32 with halving, exactly AdaptiveModel.update).
        freq[b] += 32
        total = ctx[2] = ctx[2] + 32
        if total >= _MAX_TOTAL:
            ctx[2] = _rescale(freq, tree)
        else:
            for j in update_path[b]:
                tree[j] += 32

    # finish(): one more pending bit, then the interval disambiguator.
    pending += 1
    bit = 0 if low < _QUARTER else 1
    acc = ((acc << (pending + 1))
           | ((1 << pending) if bit else ((1 << pending) - 1)))
    nbits += pending + 1
    rem = nbits & 7
    if rem:  # zero-pad the final partial byte, as BitWriter.getvalue does
        acc <<= 8 - rem
        nbits += 8 - rem
    out += acc.to_bytes(nbits >> 3, "big")
    return bytes(out)


def decompress(blob: bytes, order: int = 0) -> bytes:
    """Invert :func:`compress` (the ``order`` must match).

    Batch kernel: the decoder state lives in locals and coded bits are
    pulled from a chunked big-int cache; past the final flush the cache
    yields the implicit trailing zeros.
    """
    if order not in (0, 1):
        raise ValueError("only order 0 and 1 models are provided")
    if len(blob) < 4:
        raise TruncatedStreamError("bit stream exhausted")
    n = int.from_bytes(blob[:4], "big")
    pos = 4
    cache = 0
    cache_bits = 0
    # Prime the 32-bit code register.
    chunk = blob[pos:pos + 32]
    if chunk:
        cache = int.from_bytes(chunk, "big")
        cache_bits = len(chunk) * 8
        pos += len(chunk)
    if cache_bits >= _CODE_BITS:
        cache_bits -= _CODE_BITS
        code = (cache >> cache_bits) & _TOP
        cache &= (1 << cache_bits) - 1
    else:
        code = (cache << (_CODE_BITS - cache_bits)) & _TOP
        cache = cache_bits = 0

    out = bytearray()
    append = out.append
    low = 0
    high = _TOP
    contexts: List[Optional[List]] = [None] * 256
    ctx = _fresh_context() if order == 0 else None
    prev = 0
    prefix_path = _PREFIX_PATH
    update_path = _UPDATE_PATH

    for _ in range(n):
        if order:
            ctx = contexts[prev]
            if ctx is None:
                ctx = contexts[prev] = _fresh_context()
        freq, tree, total = ctx
        span = high - low + 1
        scaled = ((code - low + 1) * total - 1) // span
        if scaled >= total:
            raise ValueError("scaled value outside model total")
        # Binary-indexed descend (AdaptiveModel.find, topbit=256).
        sym = 0
        rem = scaled
        mask = 256
        while mask:
            nxt = sym + mask
            if nxt <= 256 and tree[nxt] <= rem:
                rem -= tree[nxt]
                sym = nxt
            mask >>= 1
        low_c = 0
        for j in prefix_path[sym]:
            low_c += tree[j]
        high_c = low_c + freq[sym]
        high = low + span * high_c // total - 1
        low = low + span * low_c // total
        while True:
            if high < _HALF:
                pass
            elif low >= _HALF:
                low -= _HALF
                high -= _HALF
                code -= _HALF
            elif low >= _QUARTER and high < _THREE_QUARTERS:
                low -= _QUARTER
                high -= _QUARTER
                code -= _QUARTER
            else:
                break
            low <<= 1
            high = (high << 1) | 1
            if not cache_bits:
                chunk = blob[pos:pos + 32]
                if chunk:
                    cache = int.from_bytes(chunk, "big")
                    cache_bits = len(chunk) * 8
                    pos += len(chunk)
                else:
                    cache = 0
                    cache_bits = 256  # implicit trailing zeros
            cache_bits -= 1
            code = (code << 1) | ((cache >> cache_bits) & 1)
        append(sym)
        if order:
            prev = sym
        freq[sym] += 32
        total = ctx[2] = ctx[2] + 32
        if total >= _MAX_TOTAL:
            ctx[2] = _rescale(freq, tree)
        else:
            for j in update_path[sym]:
                tree[j] += 32
    return bytes(out)
