"""Greedy BRISC dictionary construction.

The paper's algorithm:

1. start from the base instruction set;
2. scan the program, generating candidate patterns by *operand
   specialization* (one field at a time) and *opcode combination* (each
   adjacent pair, crossed with the zero-or-one-field specializations of
   both sides);
3. estimate each candidate's benefit ``B = P − W`` and keep a heap;
4. after each pass, admit the best ``K`` candidates (default 20, the
   paper's table uses K=20), rewrite the program — combinations first,
   then any instruction that a new pattern represents more compactly;
5. stop after a pass yielding fewer than ``K`` candidates with positive B.

The returned :class:`BuildResult` carries the final slot program, the
dictionary in admission order, and the statistics the paper reports
(candidates tested, dictionary size).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..vm.instr import VMProgram
from .cost import CostModel
from .pattern import DictPattern, InsnPattern, pattern_of_instr
from .slots import Slot, SlotFunction, SlotProgram, build_slots

__all__ = ["BuildResult", "BriscBuilder", "build_dictionary"]

_MAX_PARTS = 4


@dataclass
class BuildResult:
    """Output of dictionary construction."""

    slots: SlotProgram
    dictionary: List[DictPattern]
    candidates_tested: int
    passes: int
    base_patterns: int

    @property
    def dictionary_size(self) -> int:
        return len(self.dictionary)


class BriscBuilder:
    """Runs the greedy construction over one program."""

    def __init__(
        self,
        program: VMProgram,
        k: int = 20,
        abundant_memory: bool = False,
        max_passes: int = 40,
    ) -> None:
        self.slots = build_slots(program)
        self.k = k
        self.cost = CostModel(abundant_memory)
        self.max_passes = max_passes
        self.seen: Set[DictPattern] = set()
        self.dictionary: List[DictPattern] = []
        self.in_dictionary: Set[DictPattern] = set()
        self.candidates_tested = 0
        self.passes = 0
        self._seed_base_patterns()
        self.base_patterns = len(self.dictionary)

    def _seed_base_patterns(self) -> None:
        for fn in self.slots.functions:
            for slot in fn.slots:
                self._admit(slot.pattern)

    def _admit(self, pattern: DictPattern) -> None:
        if pattern not in self.in_dictionary:
            self.in_dictionary.add(pattern)
            self.dictionary.append(pattern)

    # -- candidate generation ----------------------------------------------

    def _augmented_set(self, slot: Slot) -> List[DictPattern]:
        """The slot's pattern plus its one-field specializations (the
        paper's "augmented operand-specialized set")."""
        out = [slot.pattern]
        for pi, (part, instr) in enumerate(zip(slot.pattern.parts, slot.insns)):
            for spec in part.specializations(instr):
                parts = list(slot.pattern.parts)
                parts[pi] = spec
                out.append(DictPattern(tuple(parts)))
        return out

    def _gather_candidates(self) -> Dict[DictPattern, int]:
        """One scan: candidate pattern -> total bytes saved (pre-dictionary
        cost).  Occurrence savings are summed greedily."""
        savings: Dict[DictPattern, int] = {}

        def account(cand: DictPattern, saved: int) -> None:
            if cand in self.in_dictionary or saved <= 0:
                return
            if cand not in savings and cand not in self.seen:
                self.candidates_tested += 1
                self.seen.add(cand)
            savings[cand] = savings.get(cand, 0) + saved

        for fn in self.slots.functions:
            slots = fn.slots
            for i, slot in enumerate(slots):
                cur_size = slot.size
                # Operand specialization, one field at a time.
                for cand in self._augmented_set(slot)[1:]:
                    account(cand, cur_size - cand.encoded_size())
                # Opcode combination with the right neighbour.
                if i + 1 >= len(slots):
                    continue
                nxt = slots[i + 1]
                if nxt.is_block_start:
                    continue
                if len(slot.insns) + len(nxt.insns) > _MAX_PARTS:
                    continue
                pair_size = cur_size + nxt.size
                for a in self._augmented_set(slot):
                    for b in self._augmented_set(nxt):
                        cand = DictPattern(a.parts + b.parts)
                        if not cand.is_control_ok():
                            continue
                        account(cand, pair_size - cand.encoded_size())
        return savings

    # -- rewriting -----------------------------------------------------------

    def _apply_patterns(self, admitted: List[DictPattern]) -> None:
        combos = [p for p in admitted if len(p.parts) > 1]
        singles_by_shape: Dict[Tuple[str, ...], List[DictPattern]] = {}
        for p in admitted:
            shape = tuple(part.name for part in p.parts)
            singles_by_shape.setdefault(shape, []).append(p)

        for fn in self.slots.functions:
            # Combination pass: left-to-right, merge windows of slots whose
            # concatenated instructions match a new combined pattern.
            if combos:
                fn.slots = self._combine_function(fn.slots, combos)
            # Specialization pass: adopt any new pattern that represents a
            # slot more compactly.
            for slot in fn.slots:
                shape = tuple(i.name for i in slot.insns)
                best = slot.pattern
                best_size = slot.size
                for cand in singles_by_shape.get(shape, ()):
                    if cand.encoded_size() < best_size and cand.matches(slot.insns):
                        best = cand
                        best_size = cand.encoded_size()
                slot.pattern = best

    def _combine_function(
        self, slots: List[Slot], combos: List[DictPattern]
    ) -> List[Slot]:
        by_first: Dict[str, List[DictPattern]] = {}
        for p in combos:
            by_first.setdefault(p.parts[0].name, []).append(p)
        out: List[Slot] = []
        i = 0
        while i < len(slots):
            slot = slots[i]
            merged = None
            for cand in by_first.get(slot.insns[0].name, ()):
                nparts = len(cand.parts)
                # Collect a window of whole slots covering nparts insns.
                window = [slot]
                total = len(slot.insns)
                j = i + 1
                ok = True
                while total < nparts:
                    if j >= len(slots) or slots[j].is_block_start:
                        ok = False
                        break
                    window.append(slots[j])
                    total += len(slots[j].insns)
                    j += 1
                if not ok or total != nparts:
                    continue
                insns = tuple(ins for s in window for ins in s.insns)
                if not cand.matches(insns):
                    continue
                old = sum(s.size for s in window)
                if cand.encoded_size() >= old:
                    continue
                merged = Slot(
                    insns=insns,
                    pattern=cand,
                    is_block_start=slot.is_block_start,
                    labels=slot.labels,
                )
                i = j
                break
            if merged is not None:
                out.append(merged)
            else:
                out.append(slot)
                i += 1
        return out

    # -- driver ------------------------------------------------------------

    def run(self) -> BuildResult:
        while self.passes < self.max_passes:
            self.passes += 1
            savings = self._gather_candidates()
            heap = []
            for cand, saved in savings.items():
                benefit = self.cost.benefit(cand, saved)
                if benefit > 0:
                    heap.append((-benefit, cand.dictionary_size(), str(cand), cand))
            heapq.heapify(heap)
            admitted: List[DictPattern] = []
            while heap and len(admitted) < self.k:
                _, _, _, cand = heapq.heappop(heap)
                admitted.append(cand)
                self._admit(cand)
            if admitted:
                self._apply_patterns(admitted)
            if len(admitted) < self.k:
                break
        return BuildResult(
            slots=self.slots,
            dictionary=self.dictionary,
            candidates_tested=self.candidates_tested,
            passes=self.passes,
            base_patterns=self.base_patterns,
        )


def build_dictionary(
    program: VMProgram,
    k: int = 20,
    abundant_memory: bool = False,
    max_passes: int = 40,
) -> BuildResult:
    """Run greedy BRISC dictionary construction over ``program``."""
    return BriscBuilder(program, k, abundant_memory, max_passes).run()
