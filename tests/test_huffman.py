"""Canonical Huffman coding tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compress.bitio import BitReader, BitWriter
from repro.compress.huffman import (
    MAX_CODE_LENGTH, HuffmanDecoder, HuffmanEncoder, canonical_codes,
    code_lengths_from_frequencies, decode_symbols, encode_symbols,
)


def kraft_sum(lengths):
    return sum(2 ** -l for l in lengths if l)


class TestCodeLengths:
    def test_all_zero_frequencies(self):
        assert code_lengths_from_frequencies([0, 0, 0]) == [0, 0, 0]

    def test_single_symbol_gets_one_bit(self):
        assert code_lengths_from_frequencies([0, 7, 0]) == [0, 1, 0]

    def test_two_symbols(self):
        lengths = code_lengths_from_frequencies([3, 5])
        assert lengths == [1, 1]

    def test_skewed_frequencies_give_shorter_codes_to_frequent(self):
        lengths = code_lengths_from_frequencies([1000, 10, 10, 10])
        assert lengths[0] == min(l for l in lengths if l)

    def test_kraft_inequality_holds(self):
        lengths = code_lengths_from_frequencies([5, 9, 12, 13, 16, 45])
        assert kraft_sum(lengths) <= 1.0 + 1e-12

    def test_length_limit_enforced(self):
        # Fibonacci-like frequencies force deep trees without a limit.
        freqs = [1, 1]
        while len(freqs) < 40:
            freqs.append(freqs[-1] + freqs[-2])
        lengths = code_lengths_from_frequencies(freqs)
        assert max(lengths) <= MAX_CODE_LENGTH
        assert kraft_sum(lengths) <= 1.0 + 1e-12

    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=300))
    @settings(max_examples=60)
    def test_lengths_always_decodable(self, freqs):
        lengths = code_lengths_from_frequencies(freqs)
        used = [l for l in lengths if l]
        if not used:
            return
        assert max(lengths) <= MAX_CODE_LENGTH
        assert kraft_sum(lengths) <= 1.0 + 1e-12
        # canonical assignment must succeed
        canonical_codes(lengths)


class TestCanonicalCodes:
    def test_prefix_free(self):
        lengths = code_lengths_from_frequencies([10, 7, 5, 2, 1])
        codes = canonical_codes(lengths)
        items = [(format(c, f"0{l}b")) for c, l in codes.values()]
        for a in items:
            for b in items:
                if a is not b:
                    assert not b.startswith(a) or a == b

    def test_shorter_codes_numerically_first(self):
        codes = canonical_codes([2, 2, 1])
        assert codes[2] == (0, 1)  # the 1-bit code is 0


class TestEncoderDecoder:
    def test_roundtrip_explicit(self):
        symbols = [0, 1, 2, 1, 0, 0, 0, 3] * 10
        blob = encode_symbols(symbols, 4)
        assert decode_symbols(blob) == symbols

    def test_unknown_symbol_rejected(self):
        enc = HuffmanEncoder.from_frequencies([1, 1, 0])
        w = BitWriter()
        with pytest.raises(ValueError):
            enc.encode_symbol(w, 2)

    def test_decoder_rejects_garbage(self):
        # A code table with lengths [1, 2, 2]: bit pattern 11...1 padded
        # stream can still decode; instead test truncated stream raises.
        enc = HuffmanEncoder.from_frequencies([5, 3, 2])
        dec = HuffmanDecoder(enc.lengths)
        with pytest.raises(EOFError):
            dec.decode_symbol(BitReader(b""))

    def test_encoded_bit_length(self):
        enc = HuffmanEncoder.from_frequencies([100, 1])
        assert enc.encoded_bit_length([0, 0, 1]) == \
            enc.codes[0][1] * 2 + enc.codes[1][1]

    def test_empty_symbol_list(self):
        blob = encode_symbols([], 4)
        assert decode_symbols(blob) == []

    @given(st.lists(st.integers(0, 60), max_size=500))
    @settings(max_examples=60)
    def test_roundtrip_property(self, symbols):
        blob = encode_symbols(symbols, 61)
        assert decode_symbols(blob) == symbols

    def test_compresses_skewed_data(self):
        symbols = [0] * 1000 + [1] * 10 + [2] * 5
        blob = encode_symbols(symbols, 3)
        # ~1 bit/symbol plus headers: must beat 1 byte/symbol handily.
        assert len(blob) < len(symbols) // 4
