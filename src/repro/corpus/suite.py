"""The benchmark suite: named inputs standing in for the paper's.

The paper's wire-format table measures three programs — a small utility,
lcc (~315 KB of SPARC code) and gcc (~1.38 MB).  The absolute sizes are
out of reach for a Python-hosted reproduction's time budget, but the
*relative* structure (one small hand-written utility, one medium compiler-
shaped program, one large program) is preserved:

* ``wc``     — the hand-written word-count sample (the paper's small row);
* ``lcc``    — every hand-written sample linked together plus a medium
  synthetic body (compiler-shaped: scanners, tables, dispatchers);
* ``gcc``    — a large synthetic program, several times ``lcc``'s size.

``build_input`` compiles a named input through the shared
:func:`repro.pipeline.default_toolchain` — its content-addressed cache
(plus a small identity cache here) lets test and benchmark code share
the work, and downstream stages (wire, BRISC) reuse the same parse and
lowering artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ir import IRModule
from ..pipeline import default_toolchain
from ..vm.instr import VMProgram
from ..vm.isa import ISA
from .generator import generate_program_source
from .samples import SAMPLES

__all__ = ["SuiteInput", "SUITE_SIZES", "suite_names", "build_input",
           "link_sources", "suite_source"]

#: Synthetic-function counts for the generated suite members.
SUITE_SIZES: Dict[str, int] = {
    "wc": 0,       # pure hand-written sample
    "lcc": 120,
    "gcc": 420,
}


@dataclass
class SuiteInput:
    """A compiled benchmark input."""

    name: str
    source: str
    module: IRModule
    program: VMProgram


def suite_names() -> List[str]:
    return list(SUITE_SIZES)


def link_sources(sources: List[str]) -> str:
    """Concatenate translation units into one, renaming their mains.

    Each sample keeps a callable ``<name>_main`` entry; a fresh ``main``
    invokes them all, so the linked program remains runnable.
    """
    parts: List[str] = []
    mains: List[str] = []
    for i, src in enumerate(sources):
        renamed = src.replace("int main(void)", f"int sample_main_{i}(void)")
        parts.append(renamed)
        mains.append(f"sample_main_{i}")
    calls = "\n".join(f"    rc += {m}();" for m in mains)
    parts.append(
        "int main(void) {\n    int rc = 0;\n%s\n    return rc;\n}\n" % calls
    )
    return "\n".join(parts)


_SOURCE_CACHE: Dict[str, str] = {}


def suite_source(name: str) -> str:
    """The C source of a named suite input (generation cached)."""
    cached = _SOURCE_CACHE.get(name)
    if cached is not None:
        return cached
    if name == "wc":
        source = SAMPLES["wc"]
    elif name == "lcc":
        # Every hand-written sample, linked, plus a medium synthetic body.
        synth = generate_program_source(functions=SUITE_SIZES["lcc"], seed=7)
        source = link_sources(list(SAMPLES.values()) + [synth])
    elif name == "gcc":
        synth_a = generate_program_source(functions=SUITE_SIZES["gcc"], seed=11)
        synth_b = generate_program_source(functions=SUITE_SIZES["gcc"] // 2,
                                          seed=13, arrays=6, strings=10)
        source = link_sources([synth_a, synth_b])
    else:
        raise KeyError(f"unknown suite input {name!r}")
    _SOURCE_CACHE[name] = source
    return source


_CACHE: Dict[Tuple[str, str], SuiteInput] = {}


def build_input(name: str, isa: Optional[ISA] = None) -> SuiteInput:
    """Compile a suite input end to end (cached per (name, ISA))."""
    isa = isa or ISA()
    key = (name, isa.name)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    source = suite_source(name)
    toolchain = default_toolchain()
    res = toolchain.compile(source, name=name, stages=("codegen",),
                            config=toolchain.config.with_isa(isa))
    built = SuiteInput(name=name, source=source, module=res.module,
                       program=res.program)
    _CACHE[key] = built
    return built
