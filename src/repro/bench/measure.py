"""Shared measurement runners behind every table and figure.

Each function computes one experiment's numbers; ``benchmarks/`` and
``examples/`` call these so the reported rows come from a single code
path.  Heavyweight artifacts (suite compilation, BRISC compression) come
from the shared :func:`repro.pipeline.default_toolchain`, whose
content-addressed cache keeps pytest-benchmark's many repeated calls
from recompiling anything.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..brisc import CompressedProgram, run_image
from ..codegen import ABLATION_VARIANTS
from ..compress import deflate
from ..corpus import build_input, suite_source
from ..jit import jit_compile
from ..native import PentiumLike, SparcLike
from ..pipeline import default_toolchain, vm_code_bytes
from ..vm import run_program

__all__ = [
    "WireRow", "BriscRow", "AblationRow", "wire_row", "brisc_row",
    "ablation_rows", "vm_code_bytes", "compressed_suite", "interp_overhead",
]


# ---------------------------------------------------------------------------
# Table 1: wire-format sizes
# ---------------------------------------------------------------------------


@dataclass
class WireRow:
    """One row of the paper's wire-code table."""

    name: str
    conventional: int      # SPARC-like native code bytes (uncompressed)
    gzipped: int           # deflate of the conventional code
    wire: int              # our wire format

    @property
    def wire_factor(self) -> float:
        """Conventional / wire — the paper reports up to 4.9 for gcc."""
        return self.conventional / self.wire if self.wire else 0.0


_WIRE_CACHE: Dict[str, WireRow] = {}


def wire_row(name: str) -> WireRow:
    """Compute one Table-1 row for a suite input."""
    cached = _WIRE_CACHE.get(name)
    if cached is not None:
        return cached
    inp = build_input(name)
    conventional = SparcLike().program_size(inp.program)
    sparc_bytes = b"".join(
        SparcLike().encode_function(fn) for fn in inp.program.functions
    )
    gzipped = len(deflate.compress(sparc_bytes))
    # Code segments only, as the paper measures (the baseline carries no
    # symbol table or data image either).  The wire artifact's meta carries
    # that metric; parse/lower hit the cache ``build_input`` warmed.
    res = default_toolchain().compile(inp.source, name=name,
                                      stages=("wire",))
    wire = res.artifact("wire").meta["code_size"]
    row = WireRow(name, conventional, gzipped, wire)
    _WIRE_CACHE[name] = row
    return row


# ---------------------------------------------------------------------------
# Table 2: BRISC sizes, JIT throughput, runtime ratios
# ---------------------------------------------------------------------------


def compressed_suite(
    name: str, k: int = 20, abundant_memory: bool = False
) -> CompressedProgram:
    """Compress a suite input (cached — this is the expensive step).

    Routed through the shared toolchain: the BRISC artifact is keyed by
    (source, ISA, k, abundant_memory), so benchmarks, tests, and the CLI
    all reuse one compression per configuration.
    """
    toolchain = default_toolchain()
    config = toolchain.config.with_brisc(k=k, abundant_memory=abundant_memory)
    res = toolchain.compile(suite_source(name), name=name,
                            stages=("brisc",), config=config)
    return res.brisc


@dataclass
class BriscRow:
    """One row of the paper's BRISC results table (K=20).

    Sizes are normalized to the Pentium-like native encoding, as the paper
    normalizes to Visual C++ output.  ``jit_runtime_ratio`` uses the
    analytic model (JIT output runs at native speed; compilation cost is
    amortized over the run); ``interp_ratio`` is measured wall-clock of
    in-place BRISC interpretation against the plain VM interpreter.
    """

    name: str
    native_bytes: int
    brisc_rel: float
    gzip_rel: float
    jit_mb_per_s: float
    jit_runtime_ratio: float
    interp_ratio: float


def interp_overhead(
    name: str, k: int = 20, max_steps: int = 200_000_000
) -> Tuple[float, float, float]:
    """(vm_seconds, brisc_seconds, ratio) on the suite input's workload.

    The BRISC side interprets the compressed image in place with slot
    caching disabled — every execution of an instruction re-decodes it,
    which is the configuration whose overhead the paper's 12x figure
    describes.
    """
    inp = build_input(name)
    cp = compressed_suite(name, k)
    t0 = time.perf_counter()
    base = run_program(inp.program, max_steps=max_steps)
    t1 = time.perf_counter()
    r = run_image(cp.image.blob, cache_decoded=False, max_steps=max_steps)
    t2 = time.perf_counter()
    if (r.exit_code, r.output) != (base.exit_code, base.output):
        raise AssertionError(f"BRISC run diverged on {name}")
    vm_s = t1 - t0
    brisc_s = t2 - t1
    return vm_s, brisc_s, brisc_s / vm_s if vm_s > 0 else float("inf")


_BRISC_ROW_CACHE: Dict[str, BriscRow] = {}


def brisc_row(name: str, k: int = 20, measure_interp: bool = True) -> BriscRow:
    """Compute one Table-2 row."""
    cached = _BRISC_ROW_CACHE.get(name)
    if cached is not None:
        return cached
    inp = build_input(name)
    cp = compressed_suite(name, k)
    target = PentiumLike()
    native = target.program_size(inp.program)
    gzip_rel = len(deflate.compress(vm_code_bytes(inp.program))) / native
    brisc_rel = cp.image.code_segment_size / native

    jit = jit_compile(cp.image.blob, target)
    # Analytic runtime model: the JIT's output is the same native code the
    # static compiler would emit (template splicing, no re-optimization),
    # so steady-state speed is 1.0x; the visible cost is compiling once.
    # Amortize compile time over a nominal 1-second run, as the paper's
    # benchmarks (whole-program runs) do.
    nominal_run_seconds = 1.0
    jit_ratio = (nominal_run_seconds + jit.compile_seconds) / nominal_run_seconds

    if measure_interp:
        _, _, interp_ratio = interp_overhead(name, k)
    else:
        interp_ratio = float("nan")
    row = BriscRow(
        name=name,
        native_bytes=native,
        brisc_rel=brisc_rel,
        gzip_rel=gzip_rel,
        jit_mb_per_s=jit.mb_per_second,
        jit_runtime_ratio=jit_ratio,
        interp_ratio=interp_ratio,
    )
    _BRISC_ROW_CACHE[name] = row
    return row


# ---------------------------------------------------------------------------
# Table 3: the abstract-machine ablation
# ---------------------------------------------------------------------------


@dataclass
class AblationRow:
    """One row of the de-tuned abstract machine table."""

    variant: str
    native_size: int
    compressed_size: int

    @property
    def ratio(self) -> float:
        """compressed/native — the paper's 0.54 / 0.56 / 0.57 / 0.59."""
        return self.compressed_size / self.native_size


_ABLATION_CACHE: Dict[Tuple[str, int], List[AblationRow]] = {}


def ablation_rows(name: str = "lcc", k: int = 20) -> List[AblationRow]:
    """Compress the same input under each abstract-machine variant.

    ``native_size`` is the Pentium-like size of the *full-feature* machine's
    code, held constant across rows (the paper normalizes each variant's
    compressed size against native code, which does not change when the
    abstract machine is de-tuned).
    """
    key = (name, k)
    cached = _ABLATION_CACHE.get(key)
    if cached is not None:
        return cached
    toolchain = default_toolchain()
    baseline = build_input(name, ABLATION_VARIANTS[0])
    native = PentiumLike().program_size(baseline.program)
    rows: List[AblationRow] = []
    for isa in ABLATION_VARIANTS:
        inp = build_input(name, isa)
        config = toolchain.config.with_isa(isa).with_brisc(k=k)
        cp = toolchain.compile(inp.source, name=name, stages=("brisc",),
                               config=config).brisc
        rows.append(AblationRow(isa.name, native, cp.image.code_segment_size))
    _ABLATION_CACHE[key] = rows
    return rows
