"""Order-1 semi-static Markov model over BRISC opcodes.

"To perform dictionary encoding, the compressor uses an order-1 semi-static
Markov model so that all opcodes fit within 8 bits": each instruction
pattern I gets a table of the patterns that can follow it; the encoded
opcode of an instruction is its index in its *predecessor's* table.  "If
more than 256 instructions can follow I, the compressor splits I into two
instruction patterns."  "There is a special context in the Markov model for
basic block beginnings (of various types) so that the BRISC program remains
interpretable" — we use two special contexts: function entry and branch
target (any labelled block start).

Tables hold at most 255 entries; byte 0xFF escapes to an explicit 2-byte
pattern id (only ever needed in the special contexts, where splitting is
not possible).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .pattern import DictPattern
from .slots import SlotFunction, SlotProgram

__all__ = ["CTX_ENTRY", "CTX_BB", "MarkovModel", "build_markov"]

CTX_ENTRY = -1
CTX_BB = -2
ESCAPE = 0xFF
_TABLE_LIMIT = 255


@dataclass
class MarkovModel:
    """Pattern ids, per-context successor tables, and split bookkeeping."""

    patterns: List[DictPattern] = field(default_factory=list)
    # context key (pattern id, CTX_ENTRY, or CTX_BB) -> ordered pattern ids.
    tables: Dict[int, List[int]] = field(default_factory=dict)
    splits: int = 0
    # pattern -> canonical id (first-use order, assigned during build).
    # Split clones alias an existing pattern, so a cloned pattern maps to
    # its original (pre-split) id.
    ids: Dict[DictPattern, int] = field(default_factory=dict)

    def pattern_id(self, pattern: DictPattern) -> int:
        """The canonical id assigned to ``pattern`` during build.

        Raises ``KeyError`` for a pattern the model has never seen.
        """
        return self.ids[pattern]

    def index_of(self, ctx: int, pid: int) -> Optional[int]:
        """Index of ``pid`` in the context table (None when absent).

        Backed by a per-context reverse map (pid -> first index) so the
        encode hot path pays O(1) per lookup instead of an O(n)
        ``list.index`` scan; the map is rebuilt transparently if the
        table is replaced or grows.
        """
        table = self.tables.get(ctx)
        if table is None:
            return None
        rindex = self.__dict__.setdefault("_rindex", {})
        cached = rindex.get(ctx)
        if cached is None or cached[0] is not table or cached[1] != len(table):
            reverse: Dict[int, int] = {}
            for i, entry in enumerate(table):
                reverse.setdefault(entry, i)
            cached = (table, len(table), reverse)
            rindex[ctx] = cached
        return cached[2].get(pid)

    def table_sizes(self) -> Dict[int, int]:
        return {ctx: len(t) for ctx, t in self.tables.items()}

    def max_successors(self) -> int:
        """Largest successor table (paper: at most 244 for lcc)."""
        return max((len(t) for t in self.tables.values()), default=0)

    def serialized_size(self) -> int:
        """Bytes the tables occupy in the image (2 per entry + headers)."""
        return sum(4 + 2 * len(table) for table in self.tables.values())


def _context_stream(fn: SlotFunction, ids: List[int]) -> List[Tuple[int, int]]:
    """(context, pattern_id) pairs for a function's slots."""
    out: List[Tuple[int, int]] = []
    prev: Optional[int] = None
    for i, slot in enumerate(fn.slots):
        if i == 0:
            ctx = CTX_ENTRY
        elif slot.is_block_start:
            ctx = CTX_BB
        else:
            assert prev is not None
            ctx = prev
        pid = ids[i]
        out.append((ctx, pid))
        prev = pid
    return out


def build_markov(slots: SlotProgram) -> Tuple[MarkovModel, Dict[int, List[int]]]:
    """Assign pattern ids and build successor tables, splitting contexts
    whose successor sets exceed the table limit.

    Returns ``(model, per-function id lists)`` where the id lists reflect
    any splits (cloned pattern ids).
    """
    # Assign ids to the distinct patterns in slot order of first use.
    patterns: List[DictPattern] = []
    id_of: Dict[DictPattern, int] = {}
    fn_ids: Dict[int, List[int]] = {}
    for fi, fn in enumerate(slots.functions):
        ids: List[int] = []
        for slot in fn.slots:
            pid = id_of.get(slot.pattern)
            if pid is None:
                pid = len(patterns)
                id_of[slot.pattern] = pid
                patterns.append(slot.pattern)
            ids.append(pid)
        fn_ids[fi] = ids

    model = MarkovModel(patterns=patterns, ids=dict(id_of))

    # Iteratively build tables and split over-full pattern contexts.
    for _round in range(64):
        succ: Dict[int, Counter] = {}
        for fi, fn in enumerate(slots.functions):
            for ctx, pid in _context_stream(fn, fn_ids[fi]):
                succ.setdefault(ctx, Counter())[pid] += 1
        overfull = [
            ctx for ctx, counter in succ.items()
            if ctx >= 0 and len(counter) > _TABLE_LIMIT
        ]
        if not overfull:
            model.tables = {
                ctx: [pid for pid, _ in counter.most_common()]
                for ctx, counter in succ.items()
            }
            return model, fn_ids
        # Split the worst offender: occurrences of pattern `ctx` followed
        # by a rare successor are relabelled to a clone id.
        ctx = max(overfull, key=lambda c: len(succ[c]))
        keep = {pid for pid, _ in succ[ctx].most_common(_TABLE_LIMIT)}
        clone_id = len(model.patterns)
        model.patterns.append(model.patterns[ctx])
        model.splits += 1
        for fi, fn in enumerate(slots.functions):
            ids = fn_ids[fi]
            for i in range(len(ids) - 1):
                nxt_slot = fn.slots[i + 1]
                if ids[i] == ctx and not nxt_slot.is_block_start \
                        and ids[i + 1] not in keep:
                    ids[i] = clone_id
    raise RuntimeError("Markov context splitting did not converge")
