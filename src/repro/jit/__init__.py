"""Template-splicing JIT from BRISC images to synthetic native code."""

from .compiler import BriscJIT, JITResult, jit_compile

__all__ = ["BriscJIT", "JITResult", "jit_compile"]
