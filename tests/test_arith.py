"""Arithmetic coder tests (the design-space extreme)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compress import arith
from repro.compress.arith import AdaptiveModel, ArithmeticEncoder
from repro.compress.bitio import BitWriter
from repro.errors import TruncatedStreamError


class TestModel:
    def test_initial_uniform(self):
        m = AdaptiveModel(4)
        assert m.total == 4
        assert m.cumulative(0) == (0, 1, 4)
        assert m.cumulative(3) == (3, 4, 4)

    def test_update_shifts_mass(self):
        m = AdaptiveModel(4)
        for _ in range(10):
            m.update(2)
        low, high, total = m.cumulative(2)
        assert (high - low) / total > 0.5

    def test_find_inverts_cumulative(self):
        m = AdaptiveModel(8)
        for s in (1, 1, 5, 5, 5):
            m.update(s)
        for sym in range(8):
            low, high, _ = m.cumulative(sym)
            assert m.find(low) == sym
            assert m.find(high - 1) == sym

    def test_rescaling_keeps_total_consistent(self):
        m = AdaptiveModel(4)
        for _ in range(5000):
            m.update(1)
        assert m.total == sum(m.freq)
        assert all(f >= 1 for f in m.freq)


class TestRoundtrip:
    def test_empty(self):
        assert arith.decompress(arith.compress(b"")) == b""

    def test_text_order0(self):
        data = b"compression by arithmetic coding " * 30
        assert arith.decompress(arith.compress(data)) == data

    def test_text_order1(self):
        data = b"compression by arithmetic coding " * 30
        blob = arith.compress(data, order=1)
        assert arith.decompress(blob, order=1) == data

    @given(st.binary(max_size=1500))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_order0(self, data):
        assert arith.decompress(arith.compress(data)) == data

    @given(st.binary(max_size=800))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_order1(self, data):
        assert arith.decompress(arith.compress(data, order=1), order=1) == data


class TestBehaviour:
    def test_order1_beats_order0_on_contextual_data(self):
        # 'qu' pairs: order-1 context makes 'u' after 'q' nearly free.
        data = b"qu" * 4000
        o0 = len(arith.compress(data, order=0))
        o1 = len(arith.compress(data, order=1))
        assert o1 < o0

    def test_skewed_data_below_one_bit_per_symbol(self):
        data = b"a" * 8000 + b"b"
        blob = arith.compress(data)
        assert len(blob) * 8 < len(data)  # < 1 bit per input byte

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            arith.compress(b"x", order=2)
        with pytest.raises(ValueError):
            arith.decompress(b"\0\0\0\0", order=3)


class TestBatchMatchesStreaming:
    """The batch kernels are bit-identical to the streaming classes."""

    @staticmethod
    def _streaming_compress(data: bytes, order: int) -> bytes:
        writer = BitWriter()
        writer.write_bits(len(data), 32)
        encoder = ArithmeticEncoder(writer)
        if order == 0:
            model = AdaptiveModel(256)
            for b in data:
                encoder.encode(model, b)
        else:
            models = {}
            prev = 0
            for b in data:
                model = models.get(prev)
                if model is None:
                    model = models[prev] = AdaptiveModel(256)
                encoder.encode(model, b)
                prev = b
        encoder.finish()
        return writer.getvalue()

    @given(st.binary(max_size=1200), st.integers(min_value=0, max_value=1))
    @settings(max_examples=40, deadline=None)
    def test_batch_bitstream_identical(self, data, order):
        assert arith.compress(data, order=order) == \
            self._streaming_compress(data, order)

    def test_truncated_header_is_typed(self):
        with pytest.raises(TruncatedStreamError):
            arith.decompress(b"\0\0")
