"""Dictionary-builder timing: serial vs. sharded scan on the largest unit.

The greedy builder's candidate scan is embarrassingly parallel across
functions (per-function savings merge by addition; the admission heap's
tie-break is a total order), so any worker count must produce the same
dictionary.  This bench times both variants on the suite's largest unit,
asserts the outputs are identical, and records the wall clock — rows land
in ``benchmarks/results/pipeline_stats.txt`` via the session fixture.

The seed-baseline row is the same measurement taken at commit a75e623,
before the scan was parallelized and the pattern cost model was cached;
it is what the current numbers should be compared against.  The workers
row is labelled with the host's CPU count: on a single-CPU host the
sharded scan cannot win (it pays per-pass pickling with no extra core to
spend it on) — the cost-model caching is what carries such hosts, and
the dictionary is identical either way.
"""

import os
import time

from conftest import save_table

from repro.bench import render_table

#: Serial builder wall clock at commit a75e623 on this suite (seconds).
SEED_BASELINE = {"lcc": 33.35, "gcc": 152.83}


def _timed_build(program, **kwargs):
    from repro.brisc.builder import build_dictionary

    start = time.perf_counter()
    result = build_dictionary(program, **kwargs)
    return result, time.perf_counter() - start


def _fingerprint(result):
    slots = [
        [(str(s.pattern), s.insns) for s in fn.slots]
        for fn in result.slots.functions
    ]
    return ([str(p) for p in result.dictionary], slots,
            result.candidates_tested, result.passes)


def test_builder_parallel_timing(results_dir, builder_timings):
    from repro.corpus import SUITE_SIZES, build_input

    unit = max(SUITE_SIZES, key=SUITE_SIZES.get)  # largest suite unit
    program = build_input(unit).program

    serial, t_serial = _timed_build(program)
    parallel, t_parallel = _timed_build(program, workers=2)

    # Worker count must be invisible in the output.
    assert _fingerprint(serial) == _fingerprint(parallel)

    rows = [
        (unit, "seed a75e623", SEED_BASELINE[unit],
         serial.passes, serial.dictionary_size),
        (unit, "serial", t_serial, serial.passes, serial.dictionary_size),
        (unit, f"workers=2 ({os.cpu_count()} cpu)", t_parallel,
         parallel.passes, parallel.dictionary_size),
    ]
    builder_timings.extend(rows)
    text = render_table(
        ["unit", "variant", "seconds", "passes", "dict"],
        [[u, v, f"{s:8.2f}", str(p), str(d)] for u, v, s, p, d in rows],
    )
    save_table(results_dir, "builder_parallel", text)

    # The cached cost model must beat the seed baseline outright.
    assert t_serial < SEED_BASELINE[unit]
