"""Multi-stream container tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compress.streams import pack_streams, stream_sizes, unpack_streams


def test_roundtrip_basic():
    streams = {"ops": b"abcabcabc" * 50, "lits": bytes(range(100))}
    assert unpack_streams(pack_streams(streams)) == streams


def test_empty_container():
    assert unpack_streams(pack_streams({})) == {}


def test_empty_stream_preserved():
    streams = {"empty": b"", "one": b"x"}
    assert unpack_streams(pack_streams(streams)) == streams


def test_uncompressed_mode():
    streams = {"a": b"zz" * 100}
    blob = pack_streams(streams, compress=False)
    assert unpack_streams(blob) == streams
    # Raw mode must store payload verbatim (container adds only framing).
    assert len(blob) >= 200


def test_tiny_streams_stored_raw_when_compression_loses():
    streams = {"tiny": b"ab"}
    blob = pack_streams(streams)
    assert unpack_streams(blob) == streams
    assert len(blob) < 30


def test_compression_applied_to_large_redundant_streams():
    streams = {"big": b"abcdefgh" * 1000}
    assert len(pack_streams(streams)) < 2000


def test_unicode_stream_names():
    streams = {"ADDRLP8": b"\x01", "CNSTI16": b"\x02\x03"}
    assert unpack_streams(pack_streams(streams)) == streams


def test_truncated_container_raises():
    blob = pack_streams({"a": b"hello world"})
    with pytest.raises((EOFError, ValueError)):
        unpack_streams(blob[:-3])


def test_stream_sizes_reports_both():
    sizes = stream_sizes({"s": b"qq" * 200})
    raw, packed = sizes["s"]
    assert raw == 400
    assert packed < raw


@given(st.dictionaries(st.text(min_size=1, max_size=10), st.binary(max_size=500),
                       max_size=8))
@settings(max_examples=40, deadline=None)
def test_roundtrip_property(streams):
    assert unpack_streams(pack_streams(streams)) == streams
