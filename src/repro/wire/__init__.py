"""The wire format: patternized, MTF+Huffman+LZ split-stream compression."""

from .format import decode_module, encode_module, stream_breakdown, wire_size
from .patternize import normalize_labels, patternize_tree, width_class

__all__ = [
    "decode_module", "encode_module", "normalize_labels", "patternize_tree",
    "stream_breakdown", "width_class", "wire_size",
]
