"""End-to-end reproduction of the paper's worked examples.

Section 3 compiles `salt` to lcc trees; section 4.4 compresses the
corresponding OmniVM code, showing the exact candidate sets and the
cost-benefit rejection on a small program.
"""

import pytest

import repro
from repro.brisc import compress
from repro.brisc.pattern import pattern_of_instr
from repro.cfront import compile_to_ast
from repro.ir import dump_function, lower_unit

SALT = """
int salt(int j, int i) {
    if (j > 0) {
        pepper(i, j);
        j--;
    }
    return j;
}
int pepper(int a, int b) { return a * b; }
int main(void) { return salt(3, 4); }
"""


@pytest.fixture(scope="module")
def program():
    return repro.compile_c(SALT, "salt")


@pytest.fixture(scope="module")
def module():
    return lower_unit(compile_to_ast(SALT, "salt"), "salt")


class TestWireSection:
    def test_tree_stream_matches_paper_structure(self, module):
        """The paper's forest for salt: LEI guard, ARGI/ARGI/CALLI,
        the decrement ASGNI, LABELV, RETI."""
        fn = module.function("salt")
        assert [t.op.name for t in fn.forest] == [
            "LEI", "ARGI", "ARGI", "CALLI", "ASGNI", "LABELV", "RETI",
        ]

    def test_patternized_operator_stream(self, module):
        """Patternizing replaces every literal with a wildcard; the paper
        shows ASGNI(ADDRLP8[*], SUBI(INDIRI(ADDRLP8[*]), CNSTC[*]))."""
        from repro.wire import patternize_tree

        fn = module.function("salt")
        asgn = fn.forest[4]
        pattern, literals = patternize_tree(asgn)
        assert [p[0] for p in pattern] == [
            "ASGNI", "ADDRFP", "SUBI", "INDIRI", "ADDRFP", "CNSTI",
        ]
        assert [value for _, value in literals] == [0, 0, 1]

    def test_dump_notation(self, module):
        text = dump_function(module.function("salt"))
        assert "CALLI(ADDRGP[pepper])" in text


class TestBriscSection:
    def test_vm_code_shape_matches_paper(self, program):
        """The paper's OmniVM code for salt: enter, spills, compare-branch
        with immediate 0, argument moves, call, the decrement, reloads,
        exit, rjr."""
        salt = program.function("salt")
        names = [i.name for i in salt.code]
        assert names[0] == "enter"
        assert names[1] == "spill.i"
        assert "blei.i" in names  # ble.i n4,0,$L56 in the paper
        assert "call" in names
        assert names[-1] == "rjr"
        assert names[-2] == "exit"
        assert names[-3] == "reload.i"

    def test_operand_specialization_candidate_sets(self, program):
        """For `enter sp,sp,24` the paper lists 3 one-field candidate
        specializations; for `spill.i n4,16(sp)` likewise 3."""
        salt = program.function("salt")
        enter = salt.code[0]
        specs = pattern_of_instr(enter).specializations(enter)
        assert len(specs) == 3
        spill = salt.code[1]
        specs = pattern_of_instr(spill).specializations(spill)
        assert len(specs) == 3

    def test_augmented_sets_give_16_combination_candidates(self, program):
        """The paper: combining instructions 1 and 2 generates the 16
        pairs from both augmented operand-specialized sets (4 x 4)."""
        from repro.brisc.builder import BriscBuilder

        builder = BriscBuilder(program)
        fn = builder.slots.functions[0]
        a = builder._augmented_set(fn.slots[0])
        b = builder._augmented_set(fn.slots[1])
        assert len(a) == 4 and len(b) == 4
        assert len(a) * len(b) == 16

    def test_small_program_learns_nothing(self, program):
        """"Because of their code-generation/interpretation table cost, W,
        none of the candidate instructions are suitable, and the program,
        as given, remains."""
        cp = compress(program, k=20)
        assert cp.build.dictionary_size == cp.build.base_patterns

    def test_small_program_still_runs_compressed(self, program):
        from repro.brisc import run_image
        from repro.vm import run_program

        base = run_program(program)
        r = run_image(compress(program).image.blob)
        assert (r.exit_code, r.output) == (base.exit_code, base.output)
        assert base.exit_code == 2  # salt(3, 4) leaves j-1 = 2

    def test_large_input_overcomes_w(self, program):
        """"For a large input, in contrast, the benefits of operand
        specialization and opcode combination will outweigh the
        instruction table costs."""
        many = SALT + "\n".join(
            f"int salt{i}(int j, int i2) {{"
            f" if (j > {i}) {{ pepper(i2, j); j--; }} return j; }}"
            for i in range(30)
        )
        big = repro.compile_c(many)
        cp = compress(big, k=10)
        assert cp.build.dictionary_size > cp.build.base_patterns
