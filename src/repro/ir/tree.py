"""IR tree nodes, functions, and modules.

A :class:`Tree` is an operator plus children plus an optional literal
operand (the part the wire compressor splits into per-opcode streams).  A
function body is a *forest*: an ordered list of trees, as in lcc and in the
paper's examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Tuple, Union

from .ops import Op, op

__all__ = ["Tree", "IRFunction", "GlobalData", "ScalarInit", "PtrInit",
           "IRModule", "T"]

Literal = Union[int, float, str, None]


@dataclass(frozen=True)
class Tree:
    """One IR tree node.

    ``value`` is the literal operand (int offset/constant, float constant,
    symbol name, or label name) and must be present exactly when the
    operator declares a literal kind.
    """

    op: Op
    kids: Tuple["Tree", ...] = ()
    value: Literal = None

    def __post_init__(self) -> None:
        if len(self.kids) != self.op.arity:
            raise ValueError(
                f"{self.op.name} takes {self.op.arity} kids, got {len(self.kids)}"
            )
        has = self.value is not None
        needs = self.op.literal != "none"
        if has != needs:
            raise ValueError(
                f"{self.op.name}: literal {'required' if needs else 'forbidden'}"
            )

    def walk(self) -> Iterator["Tree"]:
        """Yield this node and all descendants in prefix order."""
        yield self
        for kid in self.kids:
            yield from kid.walk()

    @property
    def size(self) -> int:
        """Number of nodes in the tree."""
        return sum(1 for _ in self.walk())

    def __str__(self) -> str:
        lit = ""
        if self.op.literal != "none":
            lit = f"[{self.value}]"
        if self.kids:
            inner = ", ".join(str(k) for k in self.kids)
            return f"{self.op.name}{lit}({inner})"
        return f"{self.op.name}{lit}"


def T(name: str, *kids: Tree, value: Literal = None) -> Tree:
    """Shorthand tree constructor: ``T("ADDI", a, b)``."""
    return Tree(op(name), tuple(kids), value)


@dataclass
class IRFunction:
    """A function's IR: its forest plus frame bookkeeping.

    ``param_sizes`` lists each parameter's size in bytes (doubles are 8);
    ``frame_size`` covers all locals and temporaries, addressed by
    ``ADDRLP`` offsets in ``[0, frame_size)``.  ``ADDRFP`` offsets index the
    parameter area in ``[0, sum(param_sizes))``.
    """

    name: str
    forest: List[Tree] = field(default_factory=list)
    frame_size: int = 0
    param_sizes: List[int] = field(default_factory=list)
    ret_suffix: str = "V"  # I/U/P/D/V — the function's return kind

    @property
    def param_bytes(self) -> int:
        return sum(self.param_sizes)

    def node_count(self) -> int:
        """Total IR nodes across the forest."""
        return sum(t.size for t in self.forest)

    def labels(self) -> List[str]:
        """All label names defined in this function, in order."""
        return [t.value for t in self.forest if t.op.name == "LABELV"]  # type: ignore

    def __str__(self) -> str:
        body = "\n".join(f"  {t}" for t in self.forest)
        return f"{self.name}:\n{body}"


@dataclass(frozen=True)
class ScalarInit:
    """Initialize ``size`` bytes at ``offset`` with an integer/float value."""

    offset: int
    size: int
    value: Union[int, float]


@dataclass(frozen=True)
class PtrInit:
    """Initialize a pointer-sized cell at ``offset`` with a symbol address."""

    offset: int
    symbol: str


@dataclass
class GlobalData:
    """A global object: name, size/alignment, and initialization items."""

    name: str
    size: int
    align: int
    items: List[Union[ScalarInit, PtrInit]] = field(default_factory=list)
    is_string: bool = False


@dataclass
class IRModule:
    """A compiled translation unit at the IR level."""

    name: str
    globals: List[GlobalData] = field(default_factory=list)
    functions: List[IRFunction] = field(default_factory=list)

    def function(self, name: str) -> IRFunction:
        """Find a function by name."""
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(f"no function named {name!r}")

    def node_count(self) -> int:
        """Total IR nodes in the module (a size proxy used in reports)."""
        return sum(fn.node_count() for fn in self.functions)
