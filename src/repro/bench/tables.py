"""Plain-text table rendering for benchmark reports.

Formats the measurement rows of :mod:`repro.bench.measure` in the shape of
the paper's tables so bench output can be eyeballed against the original.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from .measure import AblationRow, BriscRow, WireRow

__all__ = ["render_table", "wire_table", "brisc_table", "ablation_table",
           "stage_stats_table", "toolchain_stats_table"]


def render_table(headers: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    """Render an aligned plain-text table."""
    materialized = [list(headers)] + [list(r) for r in rows]
    widths = [
        max(len(row[i]) for row in materialized)
        for i in range(len(headers))
    ]
    lines: List[str] = []
    for ri, row in enumerate(materialized):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if ri == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def wire_table(rows: Iterable[WireRow]) -> str:
    """The paper's wire-code size table (conventional/gzipped/wire)."""
    return render_table(
        ["program", "uncompressed", "gzipped", "wire code", "factor"],
        [
            [r.name, str(r.conventional), str(r.gzipped), str(r.wire),
             f"{r.wire_factor:.2f}x"]
            for r in rows
        ],
    )


def brisc_table(rows: Iterable[BriscRow]) -> str:
    """The paper's BRISC results table (sizes normalized to native)."""
    return render_table(
        ["program", "native B", "BRISC", "gzip", "JIT MB/s",
         "JIT runtime", "interp"],
        [
            [r.name, str(r.native_bytes), f"{r.brisc_rel:.2f}",
             f"{r.gzip_rel:.2f}", f"{r.jit_mb_per_s:.2f}",
             f"{r.jit_runtime_ratio:.2f}x", f"{r.interp_ratio:.1f}x"]
            for r in rows
        ],
    )


def ablation_table(rows: Iterable[AblationRow]) -> str:
    """The paper's abstract-machine variant table."""
    return render_table(
        ["abstract machine variant", "compressed/native"],
        [[r.variant, f"{r.ratio:.2f}"] for r in rows],
    )


def stage_stats_table(rows: Iterable[dict]) -> str:
    """Per-stage rows of one :class:`repro.pipeline.CompilationResult`.

    ``rows`` is :meth:`CompilationResult.stage_rows` output: dicts with
    ``stage``, ``seconds``, ``size``, ``cached``, and ``meta`` keys.
    """
    return render_table(
        ["stage", "time", "size", "cached", "detail"],
        [
            [r["stage"], f"{r['seconds'] * 1000:9.2f} ms",
             f"{r['size']:8d} B" if r["size"] else "       —",
             "yes" if r["cached"] else "no",
             ", ".join(f"{k}={v}" for k, v in sorted(r["meta"].items()))]
            for r in rows
        ],
    )


def toolchain_stats_table(stats: dict) -> str:
    """Lifetime per-stage stats of a :class:`repro.pipeline.Toolchain`.

    ``stats`` is :meth:`Toolchain.stats` output; renders the ``stages``
    section (runs, cache hits, cumulative seconds, bytes produced) plus,
    when any BRISC build ran, the builder's aggregated per-pass counters.
    """
    table = render_table(
        ["stage", "runs", "cache hits", "replays", "hit rate", "seconds",
         "bytes"],
        [
            [name, str(s["runs"]), str(s["cache_hits"]),
             str(s.get("replays", 0)), f"{s.get('hit_rate', 0.0):.0%}",
             f"{s['seconds']:8.3f}", str(s["bytes"])]
            for name, s in stats["stages"].items()
        ],
    )
    builder = stats.get("brisc_builder")
    if builder and builder.get("builds"):
        table += "\n\n" + render_table(
            ["brisc builder", "builds", "passes", "candidates", "admitted",
             "seconds"],
            [["totals", str(builder["builds"]), str(builder["passes"]),
              str(builder["candidates"]), str(builder["admitted"]),
              f"{builder['seconds']:8.3f}"]],
        )
    return table
