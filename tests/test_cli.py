"""CLI (`python -m repro`) tests."""

import json

import pytest

from repro.__main__ import main

HELLO = """
int sq(int x) { return x * x; }
int main(void) { print_int(sq(7)); putchar('\\n'); return 0; }
"""


@pytest.fixture
def hello_c(tmp_path):
    path = tmp_path / "hello.c"
    path.write_text(HELLO)
    return str(path)


def test_run(hello_c, capsys):
    assert main(["run", hello_c]) == 0
    assert capsys.readouterr().out == "49\n"


def test_dump_ir(hello_c, capsys):
    assert main(["dump-ir", hello_c]) == 0
    out = capsys.readouterr().out
    assert "MULI" in out and "RETI" in out


def test_dump_asm(hello_c, capsys):
    assert main(["dump-asm", hello_c]) == 0
    out = capsys.readouterr().out
    assert "enter sp,sp," in out and "rjr ra" in out


def test_sizes(hello_c, capsys):
    assert main(["sizes", hello_c]) == 0
    out = capsys.readouterr().out
    assert "BRISC code segment" in out
    assert "wire format" in out


def test_sizes_json(hello_c, capsys):
    assert main(["sizes", hello_c, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    sizes = payload["sizes"]
    for key in ("sparc_native", "pentium_native", "vm", "deflate_vm",
                "wire", "wire_code", "brisc", "brisc_code"):
        assert isinstance(sizes[key], int) and sizes[key] > 0
    assert payload["brisc_patterns"] > 0


def test_stats(hello_c, capsys):
    assert main(["stats", hello_c]) == 0
    out = capsys.readouterr().out
    for stage in ("parse", "lower", "codegen", "wire", "brisc", "deflate"):
        assert stage in out
    assert "cache:" in out


def test_stats_json(hello_c, capsys):
    assert main(["stats", hello_c, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert [row["stage"] for row in payload["stages"]] == \
        ["parse", "lower", "codegen", "wire", "brisc", "deflate"]
    assert "toolchain" in payload


def test_disk_cache_across_invocations(hello_c, tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert main(["--cache-dir", cache_dir, "sizes", hello_c]) == 0
    capsys.readouterr()
    assert main(["--cache-dir", cache_dir, "stats", hello_c]) == 0
    out = capsys.readouterr().out
    assert "yes" in out  # stages served from the on-disk cache


def test_wire_output(hello_c, tmp_path, capsys):
    out_path = str(tmp_path / "out.wire")
    assert main(["wire", hello_c, "-o", out_path]) == 0
    blob = open(out_path, "rb").read()
    assert blob[:4] == b"WIR2"


def test_brisc_roundtrip_via_cli(hello_c, tmp_path, capsys):
    image = str(tmp_path / "out.brisc")
    assert main(["brisc", hello_c, "-o", image]) == 0
    capsys.readouterr()
    assert main(["exec-brisc", image]) == 0
    assert capsys.readouterr().out == "49\n"


def test_brisc_workers_flag_matches_serial(hello_c, tmp_path, capsys):
    """`--workers 2` must emit exactly the bytes the serial builder does."""
    serial = tmp_path / "serial.brisc"
    parallel = tmp_path / "parallel.brisc"
    assert main(["brisc", hello_c, "-o", str(serial)]) == 0
    assert main(["--workers", "2", "brisc", hello_c,
                 "-o", str(parallel)]) == 0
    capsys.readouterr()
    assert serial.read_bytes() == parallel.read_bytes()


def test_compile_error_reported(tmp_path, capsys):
    bad = tmp_path / "bad.c"
    bad.write_text("int main(void) { return undeclared; }")
    assert main(["run", str(bad)]) == 1
    assert "error:" in capsys.readouterr().err


def test_missing_input_reported(capsys):
    assert main(["run", "does-not-exist.c"]) == 1
    assert "error:" in capsys.readouterr().err


def test_run_exit_code_propagates(tmp_path):
    src = tmp_path / "exit3.c"
    src.write_text("int main(void) { return 3; }")
    assert main(["run", str(src)]) == 3


# ---------------------------------------------------------------------------
# verify / fuzz
# ---------------------------------------------------------------------------


@pytest.fixture
def wire_blob_path(hello_c, tmp_path, capsys):
    out_path = str(tmp_path / "v.wire")
    assert main(["wire", hello_c, "-o", out_path]) == 0
    capsys.readouterr()
    return out_path


def test_verify_clean_wire(wire_blob_path, capsys):
    assert main(["verify", wire_blob_path]) == 0
    assert "OK" in capsys.readouterr().out


def test_verify_clean_brisc(hello_c, tmp_path, capsys):
    image = str(tmp_path / "v.brisc")
    assert main(["brisc", hello_c, "-o", image]) == 0
    capsys.readouterr()
    assert main(["verify", image]) == 0
    assert "OK" in capsys.readouterr().out


def test_verify_corrupt_exits_1(wire_blob_path, capsys):
    blob = bytearray(open(wire_blob_path, "rb").read())
    blob[len(blob) // 2] ^= 0x20
    open(wire_blob_path, "wb").write(bytes(blob))
    assert main(["verify", wire_blob_path]) == 1
    assert "corrupt" in capsys.readouterr().err


def test_verify_unknown_magic_exits_2(tmp_path, capsys):
    path = str(tmp_path / "mystery.bin")
    open(path, "wb").write(b"GIF89a" + bytes(64))
    assert main(["verify", path]) == 2
    assert "unsupported" in capsys.readouterr().err


def test_verify_future_version_exits_2(wire_blob_path, capsys):
    blob = open(wire_blob_path, "rb").read()
    open(wire_blob_path, "wb").write(b"WIR9" + blob[4:])
    assert main(["verify", wire_blob_path]) == 2
    assert "unsupported" in capsys.readouterr().err


def test_fuzz_smoke(capsys):
    assert main(["fuzz", "--seed", "5", "--mutations", "20",
                 "--units", "wc", "--formats", "wire"]) == 0
    out = capsys.readouterr().out
    assert "wc.wire" in out and "0 contract violations" in out


def test_fuzz_rejects_unknown_format(capsys):
    assert main(["fuzz", "--formats", "tar"]) == 2
    assert "unknown formats" in capsys.readouterr().err


def test_fuzz_chunked_formats(capsys):
    """wire3/brisc3 run both the byte sweep and the isolation harness."""
    assert main(["fuzz", "--seed", "5", "--mutations", "10",
                 "--units", "wc", "--formats", "wire3,brisc3",
                 "--chunk-bytes", "256"]) == 0
    out = capsys.readouterr().out
    assert "wc.wire3" in out and "wc.brisc3" in out
    assert "[chunks]" in out and "0 contract violations" in out


# ---------------------------------------------------------------------------
# seekable containers: verify --function
# ---------------------------------------------------------------------------


@pytest.fixture
def wire3_blob_path(hello_c, tmp_path, capsys):
    from repro.cfront import compile_to_ast
    from repro.container import GreedyPlacement
    from repro.ir import lower_unit
    from repro.wire import encode_module_v3

    module = lower_unit(compile_to_ast(HELLO, "hello"), "hello")
    blob = encode_module_v3(module, placement=GreedyPlacement(64))
    path = tmp_path / "v.wir3"
    path.write_bytes(blob)
    return str(path)


def test_verify_function_on_chunked_container(wire3_blob_path, capsys):
    assert main(["verify", wire3_blob_path, "--function", "sq"]) == 0
    assert "wire function 'sq'" in capsys.readouterr().out


def test_verify_function_on_sparse_container(wire3_blob_path, tmp_path,
                                             capsys):
    """A container holding only one function's chunks still verifies."""
    from repro.container import assemble_sparse, container_index

    blob = open(wire3_blob_path, "rb").read()
    ranges = container_index(blob).ranges_for_function("sq")
    sparse = assemble_sparse(len(blob),
                             [(o, blob[o:o + n]) for o, n in ranges])
    path = tmp_path / "sparse.wir3"
    path.write_bytes(sparse)
    assert main(["verify", str(path), "--function", "sq"]) == 0
    capsys.readouterr()
    # The full-module check on the same sparse blob must fail loudly --
    # the unfetched chunks are zero filler.
    assert main(["verify", str(path)]) == 1
    assert "corrupt" in capsys.readouterr().err


def test_verify_function_missing_exits_1(wire3_blob_path, capsys):
    assert main(["verify", wire3_blob_path, "--function", "nope"]) == 1
    assert "corrupt" in capsys.readouterr().err


def test_verify_function_corrupt_chunk_exits_1(wire3_blob_path, capsys):
    from random import Random

    from repro.container import container_index
    from repro.faults import corrupt_chunk

    blob = open(wire3_blob_path, "rb").read()
    index = container_index(blob)
    victim = index.chunk_of("sq")
    open(wire3_blob_path, "wb").write(
        corrupt_chunk(blob, victim.index, Random(1)))
    assert main(["verify", wire3_blob_path, "--function", "sq"]) == 1
    assert "CRC" in capsys.readouterr().err


def test_cache_inspect_and_prune(hello_c, tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    # Warm the store through a disk-cached compile.
    assert main(["--cache-dir", cache_dir, "sizes", hello_c]) == 0
    capsys.readouterr()
    assert main(["--cache-dir", cache_dir, "cache"]) == 0
    out = capsys.readouterr().out
    assert "entries" in out and " 0\n" not in out.split("entries")[1][:12]
    # Prune to zero evicts everything.
    assert main(["--cache-dir", cache_dir, "cache", "--prune",
                 "--max-bytes", "0"]) == 0
    out = capsys.readouterr().out
    assert "pruned" in out
    assert main(["--cache-dir", cache_dir, "cache"]) == 0
    assert "entries   : 0" in capsys.readouterr().out


def test_cache_prune_requires_max_bytes(tmp_path, capsys):
    assert main(["--cache-dir", str(tmp_path), "cache", "--prune"]) == 2
    assert "--max-bytes" in capsys.readouterr().err
