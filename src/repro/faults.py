"""Deterministic fault injection for the decode path.

The robustness contract of this reproduction is simple to state: feed any
decoder any bytes, and it either returns the exact artifact it was given
(the mutation hit dead space or cancelled out) or raises a typed
:class:`~repro.errors.DecodeError` — promptly.  No ``IndexError`` leaking
out of a slice, no silent wrong answer, no unbounded loop chewing on a
forged length field.

This module is the harness that checks the contract.  It mutates a known
good container with a small family of byte-level faults — single bit
flips, truncations, byte deletions, duplications, and adjacent swaps (the
classic transmission/storage error shapes) — and classifies what the
decoder does with each mutant:

``intact``
    decoded successfully to a value canonically equal to the original;
``detected``
    raised a :class:`DecodeError` subclass — the desired outcome;
``unchanged``
    the mutation produced the identical blob (e.g. swapping equal bytes);
``untyped``
    raised anything *outside* the taxonomy — a contract violation;
``wrong_answer``
    decoded "successfully" to a different value — silent corruption;
``hang``
    did not return within the deadline.

All randomness comes from a seeded :class:`random.Random`, so a failing
mutation index reproduces exactly; there is no wall-clock randomness
anywhere.  The CLI front end lives in ``python -m repro fuzz``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from random import Random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .errors import DecodeError

__all__ = [
    "MUTATION_KINDS",
    "FuzzFailure",
    "FuzzReport",
    "apply_mutation",
    "fuzz_decoder",
]

MUTATION_KINDS = ("bit_flip", "truncate", "delete", "duplicate", "swap")

FAILURE_OUTCOMES = ("untyped", "wrong_answer", "hang")


def apply_mutation(blob: bytes, kind: str, rng: Random) -> bytes:
    """Apply one ``kind`` of fault to ``blob`` at a position drawn from
    ``rng``; pure function of its inputs."""
    if kind not in MUTATION_KINDS:
        raise ValueError(f"unknown mutation kind {kind!r}")
    if not blob:
        return blob
    if kind == "bit_flip":
        i = rng.randrange(len(blob))
        return blob[:i] + bytes([blob[i] ^ (1 << rng.randrange(8))]) + blob[i + 1:]
    if kind == "truncate":
        return blob[: rng.randrange(len(blob))]
    if kind == "delete":
        i = rng.randrange(len(blob))
        return blob[:i] + blob[i + 1:]
    if kind == "duplicate":
        i = rng.randrange(len(blob))
        return blob[: i + 1] + blob[i : i + 1] + blob[i + 1:]
    # swap two adjacent bytes
    if len(blob) < 2:
        return blob
    i = rng.randrange(len(blob) - 1)
    return blob[:i] + blob[i + 1 : i + 2] + blob[i : i + 1] + blob[i + 2:]


@dataclass(frozen=True)
class FuzzFailure:
    """One contract-violating mutation, with enough detail to replay it."""

    target: str
    kind: str
    index: int        # mutation ordinal: re-runs reproduce it exactly
    outcome: str      # "untyped" | "wrong_answer" | "hang"
    detail: str


@dataclass
class FuzzReport:
    """Outcome histogram of one fuzzing run against one container."""

    target: str
    seed: int
    mutations: int
    counts: Dict[str, int] = field(default_factory=dict)
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        parts = ", ".join(
            f"{name}={self.counts.get(name, 0)}"
            for name in ("intact", "detected", "unchanged") + FAILURE_OUTCOMES
            if self.counts.get(name, 0)
        )
        status = "OK" if self.ok else f"{len(self.failures)} FAILURES"
        return (f"{self.target}: {self.mutations} mutations "
                f"(seed {self.seed}): {parts} -> {status}")


def _call_with_deadline(
    decode: Callable[[bytes], object], blob: bytes, deadline: float
) -> Tuple[str, object]:
    """Run ``decode(blob)`` on a watchdog thread.

    Returns ("value", result), ("error", exception), or ("hang", None).
    A hung decode leaks its (daemon) thread — acceptable for a test
    harness, and the only way to keep the sweep moving without signals.
    """
    box: Dict[str, object] = {}

    def run() -> None:
        try:
            box["value"] = decode(blob)
        except BaseException as exc:  # noqa: BLE001 - classified by caller
            box["error"] = exc

    worker = threading.Thread(target=run, daemon=True)
    worker.start()
    worker.join(deadline)
    if worker.is_alive():
        return "hang", None
    if "error" in box:
        return "error", box["error"]
    return "value", box["value"]


def fuzz_decoder(
    blob: bytes,
    decode: Callable[[bytes], object],
    *,
    target: str = "container",
    mutations: int = 500,
    seed: int = 0,
    deadline: float = 10.0,
    kinds: Sequence[str] = MUTATION_KINDS,
    canonical: Optional[Callable[[object], object]] = None,
) -> FuzzReport:
    """Sweep ``mutations`` seeded faults over ``blob`` through ``decode``.

    ``decode`` must decode the *unmutated* blob successfully; its result
    (projected through ``canonical`` when given — use this when decoded
    objects need normalization before ``==`` is meaningful) is the
    reference against which surviving mutants are compared.  Mutation
    kinds are cycled round-robin so every kind gets ~equal coverage.
    """
    if mutations < 1:
        raise ValueError("mutations must be positive")
    if not kinds:
        raise ValueError("at least one mutation kind required")
    project = canonical if canonical is not None else (lambda value: value)
    reference = project(decode(bytes(blob)))
    rng = Random(seed)
    report = FuzzReport(target=target, seed=seed, mutations=mutations)

    def bump(outcome: str) -> None:
        report.counts[outcome] = report.counts.get(outcome, 0) + 1

    for index in range(mutations):
        kind = kinds[index % len(kinds)]
        mutated = apply_mutation(bytes(blob), kind, rng)
        if mutated == blob:
            bump("unchanged")
            continue
        status, payload = _call_with_deadline(decode, mutated, deadline)
        if status == "hang":
            bump("hang")
            report.failures.append(FuzzFailure(
                target, kind, index, "hang",
                f"no result within {deadline}s"))
        elif status == "error":
            if isinstance(payload, DecodeError):
                bump("detected")
            else:
                bump("untyped")
                report.failures.append(FuzzFailure(
                    target, kind, index, "untyped",
                    f"{type(payload).__name__}: {payload}"))
        else:
            try:
                same = project(payload) == reference
            except Exception as exc:  # canonicalization itself blew up
                same = False
                bump("untyped")
                report.failures.append(FuzzFailure(
                    target, kind, index, "untyped",
                    f"canonicalization failed: {type(exc).__name__}: {exc}"))
                continue
            if same:
                bump("intact")
            else:
                bump("wrong_answer")
                report.failures.append(FuzzFailure(
                    target, kind, index, "wrong_answer",
                    "decode succeeded with a different artifact"))
    return report
