"""Content-addressed artifact caches.

Keys are SHA-256 hex digests chained over (source text, unit name, stage
name, stage configuration) — see :meth:`Toolchain.compile` — so any
change to the input or to a stage's knobs produces a different key.

Three backends:

* :class:`MemoryCache` — bounded LRU, the default;
* :class:`DiskCache` — pickles under ``~/.cache/repro/`` (or
  ``$REPRO_CACHE_DIR``), content-addressed by key, written atomically;
* :class:`TieredCache` — memory in front of disk, promoting disk hits.

All backends are thread-safe: the long-lived service front end
(:mod:`repro.service`) shares one cache across concurrent request
threads, so the LRU bookkeeping and the hit/miss counters are guarded by
a per-cache lock.  Disk entries need no lock beyond the counters — they
are written atomically (temp file + ``os.replace``) already.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Optional

from ..errors import DecodeError
from .artifacts import Artifact

__all__ = [
    "ArtifactCache", "DiskCache", "MemoryCache", "TieredCache",
    "default_cache_dir",
]


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else
    ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


class ArtifactCache:
    """Backend interface plus thread-safe hit/miss accounting."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()

    def get(self, key: str) -> Optional[Artifact]:
        raise NotImplementedError

    def put(self, key: str, artifact: Artifact) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        """Make every accepted ``put`` durable.  All shipped backends
        write through synchronously, so this is a no-op hook; the service
        front end calls it during graceful drain so a buffering backend
        would slot in without changes."""

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses}

    # -- federation hooks --------------------------------------------------
    #
    # Cache federation (:mod:`repro.cluster.federation`) moves artifacts
    # between nodes as raw pickle bytes: ``peek_bytes`` exports an entry
    # without deserializing it (a byte copy for the disk backend), and
    # ``absorb_bytes`` imports peer bytes after validating they unpickle
    # to an :class:`Artifact`.  Neither touches the hit/miss counters —
    # federation traffic is accounted separately by the federated cache.

    def peek_bytes(self, key: str) -> Optional[bytes]:
        """Serialized artifact bytes for ``key``, or ``None`` if absent."""
        return None

    def absorb_bytes(self, key: str, blob: bytes) -> Optional[Artifact]:
        """Validate and store peer-supplied artifact bytes.

        Returns the artifact on success, ``None`` when the bytes do not
        unpickle to an :class:`Artifact` (a corrupt or foreign payload
        must never poison the store).
        """
        artifact = _load_artifact(blob)
        if artifact is not None:
            self.put(key, artifact)
        return artifact


def _load_artifact(blob: bytes) -> Optional[Artifact]:
    """Unpickle peer/disk bytes, returning ``None`` unless the payload is
    a well-formed :class:`Artifact` (unpickling corrupt bytes can raise
    nearly anything, so the net is deliberately wide)."""
    try:
        artifact = pickle.loads(blob)
    except Exception:
        return None
    return artifact if isinstance(artifact, Artifact) else None


class MemoryCache(ArtifactCache):
    """Bounded in-process LRU over artifacts."""

    def __init__(self, capacity: int = 512) -> None:
        super().__init__()
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[str, Artifact]" = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> Optional[Artifact]:
        with self._lock:
            artifact = self._entries.get(key)
            if artifact is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return artifact

    def put(self, key: str, artifact: Artifact) -> None:
        with self._lock:
            self._entries[key] = artifact
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def peek_bytes(self, key: str) -> Optional[bytes]:
        with self._lock:
            artifact = self._entries.get(key)
        if artifact is None:
            return None
        return pickle.dumps(artifact, protocol=pickle.HIGHEST_PROTOCOL)


class DiskCache(ArtifactCache):
    """Pickle-per-artifact store under a cache directory.

    Entries live at ``<root>/<key[:2]>/<key>.pkl`` and are written via a
    temp file + ``os.replace`` so concurrent writers (parallel batch
    workers sharing the directory) never expose partial files.  Unreadable
    or corrupt entries are treated as misses and removed best-effort.
    """

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        super().__init__()
        self.root = Path(root) if root is not None else default_cache_dir()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def _drop(self, path: Path) -> None:
        """Best-effort removal of a bad entry so it is not retried."""
        try:
            path.unlink()
        except OSError:
            pass

    def _miss(self) -> None:
        with self._lock:
            self.misses += 1

    def get(self, key: str) -> Optional[Artifact]:
        path = self._path(key)
        try:
            with open(path, "rb") as f:
                artifact = pickle.load(f)
        except DecodeError:
            # A payload's own integrity checks fired while materializing
            # (e.g. a CRC-framed container embedded in the artifact): the
            # entry is corrupt on disk, so remove it and recompile.
            self._drop(path)
            self._miss()
            return None
        # Unpickling arbitrary corrupt bytes can raise nearly anything
        # (UnpicklingError, ValueError, EOFError, ImportError, ...); any
        # unreadable entry is simply a miss.
        except Exception:
            if path.exists():
                self._drop(path)
            self._miss()
            return None
        if not isinstance(artifact, Artifact):
            # Readable pickle, wrong shape (stale schema or foreign file).
            self._drop(path)
            self._miss()
            return None
        with self._lock:
            self.hits += 1
        return artifact

    def put(self, key: str, artifact: Artifact) -> None:
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as f:
                    pickle.dump(artifact, f, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            pass  # a read-only or full cache dir must never fail a compile

    def peek_bytes(self, key: str) -> Optional[bytes]:
        try:
            with open(self._path(key), "rb") as f:
                return f.read()
        except OSError:
            return None

    def absorb_bytes(self, key: str, blob: bytes) -> Optional[Artifact]:
        """Byte-copy import: validate, then write the peer's bytes as-is
        (same atomic temp-file + replace dance as :meth:`put`)."""
        artifact = _load_artifact(blob)
        if artifact is None:
            return None
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as f:
                    f.write(blob)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            pass  # an unwritable store degrades to memory-only federation
        return artifact

    # -- size accounting and bounded growth --------------------------------

    def _entries(self):
        """(path, mtime, bytes) for every entry currently on disk."""
        rows = []
        try:
            shards = list(self.root.iterdir())
        except OSError:
            return rows
        for shard in shards:
            try:
                for path in shard.glob("*.pkl"):
                    st = path.stat()
                    rows.append((path, st.st_mtime, st.st_size))
            except OSError:
                continue  # shard vanished or unreadable: nothing to count
        return rows

    def usage(self) -> Dict[str, int]:
        """``{"entries": n, "bytes": total}`` for the on-disk store."""
        rows = self._entries()
        return {"entries": len(rows), "bytes": sum(r[2] for r in rows)}

    def prune(self, max_bytes: int) -> Dict[str, int]:
        """Evict oldest-mtime entries until the store fits ``max_bytes``.

        A long-lived server calls this periodically (and on graceful
        drain) so the warm store cannot fill the disk.  Keys are
        content-addressed, so eviction is always safe — at worst an
        evicted unit recompiles.  Returns removed/kept entry and byte
        counts.
        """
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        rows = sorted(self._entries(), key=lambda r: (r[1], r[0].name))
        total = sum(r[2] for r in rows)
        removed_entries = removed_bytes = 0
        for path, _, size in rows:
            if total <= max_bytes:
                break
            self._drop(path)
            total -= size
            removed_entries += 1
            removed_bytes += size
        return {
            "removed_entries": removed_entries,
            "removed_bytes": removed_bytes,
            "kept_entries": len(rows) - removed_entries,
            "kept_bytes": total,
        }


class TieredCache(ArtifactCache):
    """Memory LRU in front of a disk backend; disk hits are promoted."""

    def __init__(self, memory: MemoryCache, disk: DiskCache) -> None:
        super().__init__()
        self.memory = memory
        self.disk = disk

    def get(self, key: str) -> Optional[Artifact]:
        artifact = self.memory.get(key)
        if artifact is None:
            artifact = self.disk.get(key)
            if artifact is not None:
                self.memory.put(key, artifact)
        with self._lock:
            if artifact is None:
                self.misses += 1
            else:
                self.hits += 1
        return artifact

    def put(self, key: str, artifact: Artifact) -> None:
        self.memory.put(key, artifact)
        self.disk.put(key, artifact)

    def flush(self) -> None:
        self.memory.flush()
        self.disk.flush()

    def peek_bytes(self, key: str) -> Optional[bytes]:
        blob = self.memory.peek_bytes(key)
        return blob if blob is not None else self.disk.peek_bytes(key)

    def absorb_bytes(self, key: str, blob: bytes) -> Optional[Artifact]:
        artifact = _load_artifact(blob)
        if artifact is None:
            return None
        self.memory.put(key, artifact)
        self.disk.absorb_bytes(key, blob)  # byte copy straight to disk
        return artifact
