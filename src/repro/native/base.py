"""Native-target abstraction.

The paper needs native code in three roles:

* a **conventional code size baseline** (its table compares against SPARC
  code segments);
* the **decompressor working-set cost** ``W`` — "averaging the size in
  bytes of decompression table instruction sequences for the Pentium and
  PowerPC 601 chips";
* the **JIT output**: BRISC is compiled by splicing per-pattern native
  templates at 2.5 MB/s.

A :class:`NativeTarget` maps each VM instruction to a synthetic native
encoding: deterministic bytes with the right *size* characteristics
(variable-length CISC for the Pentium-like target, fixed 4-byte words with
multi-instruction expansions for the RISC-like targets).  The bytes are not
executable — the substitution preserves every size and throughput
measurement the paper makes, which is all its evaluation uses them for.
"""

from __future__ import annotations


from ..vm.instr import Instr, VMFunction, VMProgram

__all__ = ["NativeTarget"]


class NativeTarget:
    """Base class: per-instruction native encodings for one chip."""

    name = "abstract"

    def encode_instr(self, instr: Instr) -> bytes:
        """Synthetic native bytes for one VM instruction."""
        raise NotImplementedError

    def instr_size(self, instr: Instr) -> int:
        """Native byte size of one VM instruction."""
        return len(self.encode_instr(instr))

    def function_size(self, fn: VMFunction) -> int:
        """Native byte size of a compiled function."""
        return sum(self.instr_size(i) for i in fn.code)

    def program_size(self, program: VMProgram) -> int:
        """Native byte size of a whole program's code segment."""
        return sum(self.function_size(fn) for fn in program.functions)

    def encode_function(self, fn: VMFunction) -> bytes:
        """Concatenated native bytes for a function."""
        return b"".join(self.encode_instr(i) for i in fn.code)

    def instr_cycles(self, instr: Instr) -> int:
        """Rough cycle cost for the analytic runtime model (1 per native
        instruction; memory macros cost proportionally more)."""
        return max(1, self.instr_size(instr) // 4)
