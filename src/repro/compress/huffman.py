"""Canonical Huffman coding.

The wire format Huffman-codes every MTF index stream, and the deflate-like
final stage Huffman-codes LZ77 tokens.  Codes are *canonical*: only the code
length of each symbol needs to be transmitted, and both sides derive
identical codewords by assigning consecutive values within each length,
shorter lengths first, ties broken by symbol order.

Code lengths are limited to :data:`MAX_CODE_LENGTH` bits (as in DEFLATE) by
a standard depth-rebalancing pass, so decode tables stay small and the
header encoding of lengths stays fixed-width.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import (
    CorruptStreamError, DEFAULT_LIMITS, ResourceLimits, TruncatedStreamError,
    decode_guard,
)
from .bitio import BitReader, BitWriter

__all__ = [
    "MAX_CODE_LENGTH",
    "code_lengths_from_frequencies",
    "canonical_codes",
    "HuffmanEncoder",
    "HuffmanDecoder",
    "write_code_lengths",
    "read_code_lengths",
    "encode_symbols",
    "decode_symbols",
]

MAX_CODE_LENGTH = 15


def code_lengths_from_frequencies(
    freqs: Sequence[int], max_length: int = MAX_CODE_LENGTH
) -> List[int]:
    """Compute Huffman code lengths (0 for unused symbols) from ``freqs``.

    Builds a standard Huffman tree with a heap, then rebalances any chain
    deeper than ``max_length`` by the usual "demote an interior leaf" fixup,
    preserving the Kraft inequality so canonical code assignment succeeds.
    """
    n = len(freqs)
    used = [i for i in range(n) if freqs[i] > 0]
    lengths = [0] * n
    if not used:
        return lengths
    if len(used) == 1:
        # A single symbol still needs one bit so the decoder can count.
        lengths[used[0]] = 1
        return lengths

    # Heap items: (frequency, tiebreak, node).  Leaves are ints, interior
    # nodes are (left, right) tuples.
    heap: List[Tuple[int, int, object]] = [(freqs[i], i, i) for i in used]
    heapq.heapify(heap)
    tiebreak = n
    while len(heap) > 1:
        f1, _, n1 = heapq.heappop(heap)
        f2, _, n2 = heapq.heappop(heap)
        heapq.heappush(heap, (f1 + f2, tiebreak, (n1, n2)))
        tiebreak += 1

    def assign(node: object, depth: int) -> None:
        if isinstance(node, tuple):
            assign(node[0], depth + 1)
            assign(node[1], depth + 1)
        else:
            lengths[node] = max(depth, 1)

    root = heap[0][2]
    # Recursion depth equals tree depth, which can reach len(used); walk
    # iteratively to be safe for large alphabets with skewed frequencies.
    stack = [(root, 0)]
    while stack:
        node, depth = stack.pop()
        if isinstance(node, tuple):
            stack.append((node[0], depth + 1))
            stack.append((node[1], depth + 1))
        else:
            lengths[node] = max(depth, 1)

    return _limit_lengths(lengths, max_length)


def _limit_lengths(lengths: List[int], max_length: int) -> List[int]:
    """Clamp code lengths to ``max_length`` while keeping Kraft-sum == 1."""
    if max(lengths) <= max_length:
        return lengths
    # Count codes per length, clamping the overlong ones.
    counts = [0] * (max_length + 1)
    for L in lengths:
        if L:
            counts[min(L, max_length)] += 1
    # Repair Kraft sum: while oversubscribed, promote one code from the
    # deepest level by demoting a shallower leaf (classic zlib fixup).
    unit = 1 << max_length  # kraft contributions scaled by 2^max_length
    total = sum(counts[L] << (max_length - L) for L in range(1, max_length + 1))
    while total > unit:
        # Find the deepest level with codes, move one code up from a
        # shallower level: take a leaf at depth d < max and split it.
        for d in range(max_length - 1, 0, -1):
            if counts[d]:
                counts[d] -= 1
                counts[d + 1] += 2
                counts[max_length] -= 1
                total -= (1 << (max_length - d)) - (1 << (max_length - d - 1))
                total -= 1  # removing a max-length code frees one unit... recompute instead
                total = sum(counts[L] << (max_length - L) for L in range(1, max_length + 1))
                break
        else:  # pragma: no cover - cannot happen with a valid tree
            raise AssertionError("unable to rebalance Huffman lengths")
    # Reassign lengths to symbols: sort used symbols by original length then
    # index, hand out the new length multiset shortest-first to the most
    # frequent... original-length order is a fine proxy and deterministic.
    used = sorted((L, i) for i, L in enumerate(lengths) if L)
    new_lengths: List[int] = []
    for L in range(1, max_length + 1):
        new_lengths.extend([L] * counts[L])
    out = [0] * len(lengths)
    for (old_l, i), new_l in zip(used, sorted(new_lengths)):
        out[i] = new_l
    return out


def canonical_codes(lengths: Sequence[int]) -> Dict[int, Tuple[int, int]]:
    """Map symbol -> (codeword, length) under the canonical assignment.

    Symbols with length 0 are absent from the result.
    """
    order = sorted((L, sym) for sym, L in enumerate(lengths) if L)
    codes: Dict[int, Tuple[int, int]] = {}
    code = 0
    prev_len = 0
    for L, sym in order:
        code <<= L - prev_len
        codes[sym] = (code, L)
        code += 1
        prev_len = L
    # Sanity: the code for the last symbol must fit in its length.
    if order:
        last_len = order[-1][0]
        if code > (1 << last_len):
            raise ValueError("code lengths violate the Kraft inequality")
    return codes


class HuffmanEncoder:
    """Encode symbols against a fixed table of canonical code lengths."""

    def __init__(self, lengths: Sequence[int]) -> None:
        self.lengths = list(lengths)
        self.codes = canonical_codes(self.lengths)

    @classmethod
    def from_frequencies(cls, freqs: Sequence[int]) -> "HuffmanEncoder":
        """Build an encoder directly from symbol frequencies."""
        return cls(code_lengths_from_frequencies(freqs))

    def encode_symbol(self, writer: BitWriter, symbol: int) -> None:
        """Append the codeword for ``symbol`` to ``writer``."""
        try:
            code, length = self.codes[symbol]
        except KeyError:
            raise ValueError(f"symbol {symbol} has no Huffman code") from None
        writer.write_bits(code, length)

    def encoded_bit_length(self, symbols: Iterable[int]) -> int:
        """Total bits the given symbols would occupy (costing utility)."""
        return sum(self.codes[s][1] for s in symbols)


class HuffmanDecoder:
    """Decode canonical Huffman codes by length-bucketed range lookup.

    Decoding accumulates bits one at a time and checks whether the value
    falls inside the canonical range for the current length — O(length) per
    symbol with tiny tables, which is plenty for this reproduction.
    """

    def __init__(self, lengths: Sequence[int]) -> None:
        self.lengths = list(lengths)
        try:
            codes = canonical_codes(self.lengths)
        except ValueError as exc:
            # Length tables read off the wire are attacker-controlled; an
            # infeasible table is a corrupt stream, not a programming error.
            raise CorruptStreamError(str(exc)) from exc
        # first_code[L], first_index[L], and symbols sorted canonically.
        by_length: Dict[int, List[int]] = {}
        for sym, (code, L) in sorted(codes.items(), key=lambda kv: (kv[1][1], kv[1][0])):
            by_length.setdefault(L, []).append(sym)
        self._first_code: Dict[int, int] = {}
        self._syms: Dict[int, List[int]] = by_length
        for L, syms in by_length.items():
            self._first_code[L] = codes[syms[0]][0]
        self._max_len = max(by_length) if by_length else 0

    def decode_symbol(self, reader: BitReader) -> int:
        """Read one codeword from ``reader`` and return its symbol."""
        code = 0
        for length in range(1, self._max_len + 1):
            code = (code << 1) | reader.read_bit()
            syms = self._syms.get(length)
            if syms is not None:
                offset = code - self._first_code[length]
                if 0 <= offset < len(syms):
                    return syms[offset]
        raise CorruptStreamError("invalid Huffman code in stream")


def write_code_lengths(writer: BitWriter, lengths: Sequence[int]) -> None:
    """Serialize a code-length table: uvarint count then 4 bits per length."""
    writer.write_bits(len(lengths), 32)
    for L in lengths:
        if not 0 <= L <= MAX_CODE_LENGTH:
            raise ValueError(f"code length {L} out of range")
        writer.write_bits(L, 4)


def read_code_lengths(
    reader: BitReader, limits: Optional[ResourceLimits] = None
) -> List[int]:
    """Inverse of :func:`write_code_lengths`.

    The count is validated against the remaining bits (each length costs
    four) and against ``limits.max_alphabet`` before any allocation.
    """
    limits = limits or DEFAULT_LIMITS
    n = reader.read_bits(32)
    limits.check("Huffman alphabet size", n, limits.max_alphabet)
    if n * 4 > reader.bits_remaining:
        raise TruncatedStreamError(
            f"code-length table promises {n} entries, stream too short")
    return [reader.read_bits(4) for _ in range(n)]


def encode_symbols(symbols: Sequence[int], alphabet_size: int) -> bytes:
    """One-shot: Huffman-code ``symbols``, embedding the length table.

    The symbol count is stored so trailing pad bits are unambiguous.
    """
    freqs = [0] * alphabet_size
    for s in symbols:
        freqs[s] += 1
    enc = HuffmanEncoder.from_frequencies(freqs)
    w = BitWriter()
    w.write_bits(len(symbols), 32)
    write_code_lengths(w, enc.lengths)
    for s in symbols:
        enc.encode_symbol(w, s)
    return w.getvalue()


def decode_symbols(
    data: bytes, limits: Optional[ResourceLimits] = None
) -> List[int]:
    """Inverse of :func:`encode_symbols`.

    Every count is validated against the remaining input and the resource
    limits, so a forged header raises a typed
    :class:`~repro.errors.DecodeError` instead of looping or allocating.
    """
    limits = limits or DEFAULT_LIMITS
    with decode_guard("Huffman stream"):
        r = BitReader(data)
        count = r.read_bits(32)
        limits.check("Huffman symbol count", count, limits.max_symbols)
        lengths = read_code_lengths(r, limits)
        if count and not any(lengths):
            raise CorruptStreamError(
                "symbol count is nonzero but the code-length table is empty")
        # Each symbol costs at least one bit, so the count cannot exceed
        # the bits left after the header — reject before the decode loop.
        if count > r.bits_remaining:
            raise TruncatedStreamError(
                f"stream promises {count} symbols, only "
                f"{r.bits_remaining} bits remain")
        dec = HuffmanDecoder(lengths)
        return [dec.decode_symbol(r) for _ in range(count)]
