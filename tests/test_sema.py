"""Semantic analysis tests: typing rules, conversions, and rejections."""

import pytest

from repro.cfront import compile_to_ast
from repro.cfront import ctypes as ct
from repro.cfront.astnodes import (
    ImplicitCast, IntLit, Return,
)
from repro.cfront.ctypes import PointerType
from repro.cfront.errors import CompileError


def check(src):
    return compile_to_ast(src)


def expr_of(src, ret_type="int"):
    """Type-check `return <src>;` inside a canned function context."""
    unit = check(
        "int gi; double gd; char gc; unsigned gu; int garr[4]; char *gs;\n"
        "struct P { int x; int y; } gp; struct P *gpp;\n"
        f"{ret_type} f(void) {{ return {src}; }}"
    )
    ret = unit.functions[-1].body.body[0]
    assert isinstance(ret, Return)
    return ret.value


def reject(src):
    with pytest.raises(CompileError):
        check(src)


class TestExpressionTyping:
    def test_int_literal(self):
        assert expr_of("42").ctype == ct.INT

    def test_arithmetic_promotes_char(self):
        e = expr_of("gc + gc")
        assert e.ctype == ct.INT

    def test_mixed_int_double(self):
        e = expr_of("gi + gd", "double")
        assert e.ctype == ct.DOUBLE

    def test_unsigned_wins(self):
        e = expr_of("gi + gu", "unsigned")
        assert e.ctype == ct.UINT

    def test_comparison_yields_int(self):
        assert expr_of("gd < gd").ctype == ct.INT

    def test_logical_yields_int(self):
        assert expr_of("gi && gd").ctype == ct.INT

    def test_array_decays_to_pointer(self):
        e = expr_of("garr", "int *")
        assert e.ctype == PointerType(ct.INT)
        assert isinstance(e, ImplicitCast)

    def test_address_of(self):
        assert expr_of("&gi", "int *").ctype == PointerType(ct.INT)

    def test_deref(self):
        assert expr_of("*gs", "char").ctype == ct.CHAR

    def test_index(self):
        assert expr_of("garr[2]").ctype == ct.INT

    def test_reverse_index(self):
        assert expr_of("2[garr]").ctype == ct.INT

    def test_member(self):
        assert expr_of("gp.x").ctype == ct.INT

    def test_arrow(self):
        assert expr_of("gpp->y").ctype == ct.INT

    def test_member_offset_computed(self):
        e = expr_of("gp.y")
        assert e.offset == 4

    def test_pointer_plus_int(self):
        e = expr_of("gs + 3", "char *")
        assert e.ctype == PointerType(ct.CHAR)

    def test_pointer_difference_is_int(self):
        assert expr_of("(garr + 3) - garr").ctype == ct.INT

    def test_conditional_common_type(self):
        assert expr_of("gi ? gi : gd", "double").ctype == ct.DOUBLE

    def test_sizeof_folds_to_constant(self):
        e = expr_of("sizeof(struct P)", "unsigned")
        assert isinstance(e, IntLit) and e.value == 8

    def test_sizeof_expr_folds(self):
        e = expr_of("sizeof gd", "unsigned")
        assert isinstance(e, IntLit) and e.value == 8

    def test_sizeof_array_not_decayed(self):
        e = expr_of("sizeof garr", "unsigned")
        assert e.value == 16

    def test_string_literal_gets_label(self):
        unit = check('char *p = "hi";\nint main(void) { return 0; }')
        assert unit.strings and unit.strings[0][1] == "hi"

    def test_identical_strings_share_label(self):
        unit = check(
            'void f(void) { print_str("x"); print_str("x"); }')
        assert len(unit.strings) == 1

    def test_constant_folding_binary(self):
        e = expr_of("2 + 3 * 4")
        assert isinstance(e, IntLit) and e.value == 14

    def test_constant_folding_truncating_division(self):
        e = expr_of("-7 / 2")
        assert isinstance(e, IntLit) and e.value == -3

    def test_constant_folding_unsigned_wrap(self):
        e = expr_of("(unsigned)0 - 1u", "unsigned")
        # folding happens on literal ops; wrap checked via IntType.wrap
        assert e.ctype == ct.UINT

    def test_enum_constant_becomes_literal(self):
        unit = check("enum { K = 9 };\nint f(void) { return K; }")
        ret = unit.functions[0].body.body[0]
        assert isinstance(ret.value, IntLit) and ret.value.value == 9


class TestImplicitConversions:
    def test_assignment_inserts_cast(self):
        unit = check("double d;\nvoid f(void) { d = 1; }")
        assign = unit.functions[0].body.body[0].expr
        assert isinstance(assign.value, (ImplicitCast, IntLit))
        assert assign.value.ctype == ct.DOUBLE

    def test_return_coerces(self):
        e = expr_of("gc", "double")
        assert e.ctype == ct.DOUBLE

    def test_argument_coercion(self):
        unit = check("void take(double x);\nvoid f(void) { take(1); }")
        call = unit.functions[1].body.body[0].expr
        assert call.args[0].ctype == ct.DOUBLE

    def test_null_pointer_constant(self):
        assert expr_of("gs == 0").ctype == ct.INT


class TestRejections:
    def test_undeclared_identifier(self):
        reject("int f(void) { return nope; }")

    def test_implicit_fn_decl_is_allowed_for_calls(self):
        check("int f(void) { return g(1); } int g(int x) { return x; }")

    def test_call_non_function(self):
        reject("int x; int f(void) { return x(); }")

    def test_wrong_arity(self):
        reject("int g(int a); int f(void) { return g(1, 2); }")

    def test_assign_to_rvalue(self):
        reject("int f(void) { 1 = 2; return 0; }")

    def test_assign_to_array(self):
        reject("int a[2]; int b[2]; void f(void) { a = b; }")

    def test_deref_non_pointer(self):
        reject("int f(void) { int x; return *x; }")

    def test_deref_void_pointer(self):
        reject("void *p; int f(void) { return *p; }")

    def test_member_of_non_struct(self):
        reject("int x; int f(void) { return x.y; }")

    def test_unknown_member(self):
        reject("struct P { int x; }; struct P p; int f(void) { return p.z; }")

    def test_break_outside_loop(self):
        reject("void f(void) { break; }")

    def test_continue_outside_loop(self):
        reject("void f(void) { continue; }")

    def test_continue_not_satisfied_by_switch(self):
        reject("void f(int x) { switch (x) { default: continue; } }")

    def test_break_in_switch_ok(self):
        check("void f(int x) { switch (x) { default: break; } }")

    def test_return_value_from_void(self):
        reject("void f(void) { return 1; }")

    def test_missing_return_value(self):
        reject("int f(void) { return; }")

    def test_duplicate_case(self):
        reject("void f(int x) { switch (x) { case 1: break; case 1: break; } }")

    def test_duplicate_default(self):
        reject("void f(int x) { switch (x) { default: break; default: break; } }")

    def test_non_constant_case(self):
        reject("void f(int x, int y) { switch (x) { case y: break; } }")

    def test_switch_on_double(self):
        reject("void f(double d) { switch (d) { default: break; } }")

    def test_struct_condition(self):
        reject("struct P { int x; }; struct P p; void f(void) { if (p) ; }")

    def test_redeclared_local(self):
        reject("void f(void) { int x; int x; }")

    def test_redeclared_global_different_type(self):
        reject("int x; double x;")

    def test_void_variable(self):
        reject("void v;")

    def test_incompatible_pointer_assignment(self):
        reject("int *p; double *q; void f(void) { p = q; }")

    def test_pointer_int_assignment_rejected(self):
        reject("int *p; void f(void) { p = 5; }")

    def test_cast_pointer_to_double_rejected(self):
        reject("int *p; double f(void) { return (double)p; }")

    def test_modulo_on_double(self):
        reject("double f(double a) { return a % 2.0; }")

    def test_bitand_on_double(self):
        reject("double f(double a) { return a & 1.0; }")

    def test_function_redefinition(self):
        reject("int f(void) { return 0; } int f(void) { return 1; }")

    def test_too_many_initializers(self):
        reject("int a[2] = {1, 2, 3};")

    def test_string_initializer_too_long(self):
        reject('char a[2] = "abc";')

    def test_non_constant_global_init_rejected_at_lowering(self):
        from repro.ir import lower_unit
        unit = check("int g(void) { return 1; } int x = g();")
        with pytest.raises(CompileError):
            lower_unit(unit)


class TestStatics:
    def test_local_static_hoisted(self):
        unit = check("int f(void) { static int n = 3; return n; }")
        hoisted = [g for g in unit.globals if "." in g.name]
        assert len(hoisted) == 1

    def test_statics_in_different_functions_distinct(self):
        unit = check(
            "int f(void) { static int n; return n; }\n"
            "int g(void) { static int n; return n; }"
        )
        hoisted = {g.name for g in unit.globals}
        assert len(hoisted) == 2


class TestArraysFromInit:
    def test_size_inferred_from_list(self):
        unit = check("int a[] = {1, 2, 3};")
        assert unit.globals[0].type.count == 3

    def test_size_inferred_from_string(self):
        unit = check('char s[] = "abcd";')
        assert unit.globals[0].type.count == 5  # includes NUL
