"""Peephole optimizer tests."""

import pytest

import repro
from repro.codegen.peephole import INVERTED_BRANCH, peephole_function
from repro.vm.asm import parse_function
from repro.vm.interp import run_program


def opt(text):
    return peephole_function(parse_function(text, "f"))


class TestRules:
    def test_self_move_removed(self):
        fn = opt("mov.i n0,n0\nhlt")
        assert [i.name for i in fn.code] == ["hlt"]

    def test_real_move_kept(self):
        fn = opt("mov.i n0,n1\nhlt")
        assert [i.name for i in fn.code] == ["mov.i", "hlt"]

    def test_jump_to_next_removed(self):
        fn = opt("jmp $next\n$next:\nhlt")
        assert [i.name for i in fn.code] == ["hlt"]
        assert fn.labels["next"] == 0

    def test_jump_elsewhere_kept(self):
        fn = opt("jmp $end\nli n0,1\n$end:\nhlt")
        assert [i.name for i in fn.code] == ["jmp", "li", "hlt"]

    def test_store_load_same_slot_becomes_move(self):
        fn = opt("st.iw n1,8(sp)\nld.iw n0,8(sp)\nhlt")
        assert [i.name for i in fn.code] == ["st.iw", "mov.i", "hlt"]
        assert fn.code[1].operands == (0, 1)

    def test_store_load_same_register_removed(self):
        fn = opt("st.iw n0,8(sp)\nld.iw n0,8(sp)\nhlt")
        assert [i.name for i in fn.code] == ["st.iw", "hlt"]

    def test_store_load_different_slot_kept(self):
        fn = opt("st.iw n0,8(sp)\nld.iw n1,12(sp)\nhlt")
        assert [i.name for i in fn.code] == ["st.iw", "ld.iw", "hlt"]

    def test_store_load_across_label_kept(self):
        fn = opt("st.iw n0,8(sp)\n$l:\nld.iw n1,8(sp)\nhlt")
        assert [i.name for i in fn.code] == ["st.iw", "ld.iw", "hlt"]

    def test_branch_over_jump_inverted(self):
        fn = opt("""
            beqi.i n0,0,$skip
            jmp $far
            $skip:
            li n0,1
            $far:
            hlt
        """)
        assert fn.code[0].name == "bnei.i"
        assert fn.code[0].operands[2] == "far"
        assert [i.name for i in fn.code] == ["bnei.i", "li", "hlt"]

    def test_branch_over_labelled_jump_kept(self):
        # A label on the jmp means something else can reach it: no rewrite.
        fn = opt("""
            beqi.i n0,0,$skip
            $also:
            jmp $far
            $skip:
            li n0,1
            $far:
            hlt
        """)
        assert fn.code[0].name == "beqi.i"

    def test_inversion_table_is_involutive(self):
        for a, b in INVERTED_BRANCH.items():
            assert INVERTED_BRANCH[b] == a

    def test_labels_remapped_after_deletions(self):
        fn = opt("""
            mov.i n0,n0
            mov.i n1,n1
            $target:
            li n0,7
            hlt
        """)
        assert fn.labels["target"] == 0
        assert fn.code[fn.labels["target"]].name == "li"


class TestSemanticsPreserved:
    @pytest.mark.parametrize("src,expected", [
        ("int main(void){int s=0;for(int i=0;i<9;i++)if(i%2)s+=i;return s;}",
         16 + 1 + 3 + 5 + 7 - 16),
        ("int f(int n){return n<2?n:f(n-1)+f(n-2);}"
         "int main(void){return f(11);}", 89),
    ])
    def test_optimized_programs_agree(self, src, expected):
        from repro.cfront import compile_to_ast
        from repro.codegen import generate_program
        from repro.ir import lower_unit

        mod = lower_unit(compile_to_ast(src, "m"), "m")
        a = run_program(generate_program(mod, optimize=False))
        b = run_program(generate_program(mod, optimize=True))
        assert a.exit_code == b.exit_code == expected
        assert a.output == b.output

    def test_optimizer_shrinks_typical_code(self):
        from repro.cfront import compile_to_ast
        from repro.codegen import generate_program
        from repro.corpus.samples import SAMPLES
        from repro.ir import lower_unit

        mod = lower_unit(compile_to_ast(SAMPLES["calc"], "calc"), "calc")
        raw = generate_program(mod, optimize=False).instruction_count()
        tidy = generate_program(mod, optimize=True).instruction_count()
        assert tidy < raw
