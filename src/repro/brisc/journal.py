"""Journaled BRISC builds: record a build's trajectory, replay it on an
edited program.

The greedy builder's state is function-separable: the merged savings map
is a plain sum of per-function contributions (:mod:`.builder` maintains
it that way for the incremental rescan), the admission heap is a pure
function of the merged map, and the final image bytes depend only on the
final slots and globals (:func:`repro.brisc.encode.encode_image` derives
the Markov model and symbol tables from them).  So a build journal that
stores, per pass, each function's **net savings delta** plus the live
set and the admitted candidate ids contains everything needed to re-run
the build for a program in which only a few functions changed:

* unchanged functions replay their recorded deltas (integer adds);
* changed functions are actually re-scanned, and the difference between
  their fresh and recorded contributions is tracked per candidate;
* each pass's admissions are re-derived from the patched savings map and
  **verified against the recorded admissions** — any divergence (the
  edit changed which patterns win) aborts the replay and the caller
  falls back to a cold build.

Because admissions are verified pass by pass, a successful replay ends
with every unchanged function holding exactly its previous final slots
and every changed function rewritten under the identical admission
sequence — i.e. the same slot program a cold build of the edited source
would produce, and therefore a byte-identical image.

Candidate ids are shared with the recorded build's interning tables
(the journal aliases them), so replay deltas, fresh scans, and recorded
deltas all speak the same id space; new patterns introduced by the edit
are interned append-only, which keeps every previously assigned id
stable.  Replay is intended for the serial (``workers=1``) pipeline
path; the journal's per-pass delta order is canonicalized to ascending
function index on replay, matching a serial cold build.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..vm.instr import VMProgram
from .builder import (
    BuildResult,
    PassStats,
    _config_sig,
    _scan_slots,
    _ScanTables,
    prepare_rewrite,
    rewrite_function,
)
from .cost import CostModel
from .pattern import DictPattern
from .slots import SlotFunction, SlotProgram, build_slot_function

__all__ = [
    "BuildJournal", "PassJournal", "changed_functions",
    "incremental_compress", "replay_build",
]


@dataclass
class PassJournal:
    """One greedy pass's replayable state.

    ``deltas`` holds ``(function index, net savings delta)`` for every
    function re-scanned that pass — fresh contribution minus stale, so
    summing deltas in sequence reproduces the merged savings map
    exactly.  ``live`` and ``admitted`` are boundary snapshots (candidate
    ids); ``candidates`` is the pass's reported candidate count.
    """

    deltas: List[Tuple[int, Dict[int, int]]] = field(default_factory=list)
    live: List[int] = field(default_factory=list)
    admitted: List[int] = field(default_factory=list)
    candidates: int = 0


@dataclass
class BuildJournal:
    """A whole build's trajectory, keyed in the build's candidate-id
    space (``patterns``/``ids`` alias the builder's interning tables).

    ``base_seed`` records each function's initial slot-pattern ids in
    slot order, so replay can reconstruct the seeded dictionary — and
    the membership differences an edit introduces — without the original
    program.  ``seen`` is the final candidates-tested id set.
    """

    config_sig: str
    patterns: List[DictPattern]
    ids: Dict[DictPattern, int]
    base_seed: List[List[int]] = field(default_factory=list)
    passes: List[PassJournal] = field(default_factory=list)
    seen: List[int] = field(default_factory=list)
    candidates_tested: int = 0


def changed_functions(
    old: VMProgram, new: VMProgram
) -> Optional[Set[int]]:
    """Indices of functions that differ between two programs.

    Returns ``None`` when the programs are not alignable (different
    function counts, or a rename/reorder) — replay needs a stable
    index ↔ function correspondence, so those edits take the cold path.
    """
    if len(old.functions) != len(new.functions):
        return None
    changed: Set[int] = set()
    for i, (a, b) in enumerate(zip(old.functions, new.functions)):
        if a is b:
            continue
        if a.name != b.name:
            return None
        if (a.code != b.code or a.labels != b.labels
                or a.frame_size != b.frame_size
                or a.param_bytes != b.param_bytes):
            changed.add(i)
    return changed


def replay_build(
    program: VMProgram,
    prev: BuildResult,
    changed: Set[int],
    k: int = 20,
    abundant_memory: bool = False,
    max_passes: int = 40,
    journal: bool = True,
) -> Optional[BuildResult]:
    """Replay ``prev``'s journaled build for ``program``.

    ``changed`` holds the indices of functions whose VM code differs
    from the build ``prev`` compressed (see :func:`changed_functions`);
    every other function's slots and candidate contributions are taken
    from the journal.  Returns ``None`` whenever the replay cannot
    guarantee byte-identity with a cold build — missing/mismatched
    journal, or an admission sequence the edit perturbed — in which case
    the caller should build cold.
    """
    j: Optional[BuildJournal] = prev.journal  # type: ignore[assignment]
    if j is None or j.config_sig != _config_sig(k, abundant_memory,
                                                max_passes):
        return None
    functions = program.functions
    if (len(functions) != len(prev.slots.functions)
            or len(j.base_seed) != len(functions)):
        return None
    if not changed:
        return prev
    t0 = time.perf_counter()

    patterns = j.patterns
    ids = j.ids
    cost = CostModel(abundant_memory)

    # Fresh scans intern straight into the journal's id space: shared
    # tables mean recorded deltas and replayed deltas agree on every id,
    # and appends never disturb an existing id.
    tables = _ScanTables()
    tables.ids = ids
    tables.patterns = patterns
    intern = tables.intern

    # -- dictionary seeding (mirrors BriscBuilder._seed_base_patterns) --
    new_fns: Dict[int, SlotFunction] = {
        i: build_slot_function(functions[i]) for i in changed
    }
    dictionary: List[DictPattern] = []
    dict_cids: Set[int] = set()
    base_seed: List[List[int]] = []
    for i in range(len(functions)):
        if i in changed:
            seed = [intern(slot.pattern) for slot in new_fns[i].slots]
        else:
            seed = j.base_seed[i]
        base_seed.append(seed)
        for cid in seed:
            if cid not in dict_cids:
                dict_cids.add(cid)
                dictionary.append(patterns[cid])
    base_patterns = len(dictionary)

    # Base-membership differences introduced by the edit.  ``d_add``
    # patterns are members now but were candidates in the recorded
    # build (and vice versa for ``d_rem``); both perturb the recorded
    # candidate counts and live sets, so they start out "touched".
    record_base = {cid for seed in j.base_seed for cid in seed}
    replay_base = {cid for seed in base_seed for cid in seed}
    d_add = replay_base - record_base
    d_rem = record_base - replay_base

    # -- replay state ---------------------------------------------------
    # ``M`` is the full merged savings map (zeros retained; the recorded
    # builder's map holds exactly its positive entries, and the merged
    # value — a sum of nonnegative per-function maps — never dips below
    # zero between per-function delta applications).  ``touched``
    # accumulates every candidate whose replay value or membership can
    # differ from the recorded build's; for those we track the recorded
    # value via OC − NC (recorded minus fresh changed-function
    # contributions) and re-derive liveness ourselves.  ``seen`` is
    # re-derived from scratch: the builder marks a candidate tested when
    # its merged value is first inserted positive while not a dictionary
    # member, which is exactly a 0→positive transition here, so walking
    # the same per-function deltas in the same (ascending) order
    # reproduces the cold build's candidates-tested set.
    M: Dict[int, int] = {}
    touched: Set[int] = set(d_add | d_rem)
    NC: Dict[int, int] = {}
    OC: Dict[int, int] = {}
    fn_sav: Dict[int, Dict[int, int]] = {i: {} for i in changed}
    seen: Set[int] = set()
    floors: Dict[int, int] = {}
    heap_keys: Dict[int, Tuple[int, str, DictPattern]] = {}
    new_passes: List[PassJournal] = []
    pass_stats: List[PassStats] = []
    touch = touched.add

    def floor(cid: int) -> int:
        f = floors.get(cid)
        if f is None:
            pat = patterns[cid]
            f = pat.dictionary_size() + cost.working_set_cost(pat)
            floors[cid] = f
        return f

    rescan: Set[int] = set(changed)  # pass 1 scans every function
    last = len(j.passes) - 1
    for p, jp in enumerate(j.passes):
        tp = time.perf_counter()
        j_by_fn: Dict[int, Dict[int, int]] = dict(jp.deltas)
        new_deltas: List[Tuple[int, Dict[int, int]]] = []
        mget = M.get
        for i in sorted(set(j_by_fn) | rescan):
            if i not in changed:
                delta = j_by_fn[i]
                for cid, d in delta.items():
                    prevv = mget(cid, 0)
                    val = prevv + d
                    M[cid] = val
                    if prevv == 0 and val > 0 and cid not in dict_cids:
                        seen.add(cid)
                new_deltas.append((i, delta))
                continue
            if i in rescan:
                fresh: Dict[int, int] = {}
                _scan_slots(new_fns[i].slots, fresh, tables)
                stale = fn_sav[i]
                net = {cid: -v for cid, v in stale.items()
                       if cid not in fresh}
                for cid, v in fresh.items():
                    d = v - stale.get(cid, 0)
                    if d:
                        net[cid] = d
                fn_sav[i] = fresh
                for cid, d in net.items():
                    touch(cid)
                    NC[cid] = NC.get(cid, 0) + d
                    prevv = mget(cid, 0)
                    val = prevv + d
                    M[cid] = val
                    if prevv == 0 and val > 0 and cid not in dict_cids:
                        seen.add(cid)
                new_deltas.append((i, net))
            if i in j_by_fn:
                for cid, d in j_by_fn[i].items():
                    touch(cid)
                    OC[cid] = OC.get(cid, 0) + d

        # Candidate count: correct the recorded count for every touched
        # candidate whose positivity or membership differs between the
        # replayed map and the recorded one.
        candidates = jp.candidates
        for cid in touched:
            m_rep = M.get(cid, 0)
            m_rec = m_rep - NC.get(cid, 0) + OC.get(cid, 0)
            rep_member = cid in dict_cids
            rec_member = ((rep_member and cid not in d_add)
                          or cid in d_rem)
            if m_rep > 0 and not rep_member:
                candidates += 1
            if m_rec > 0 and not rec_member:
                candidates -= 1

        # Live set: the recorded live set minus touched candidates, plus
        # every touched candidate that currently clears its floor (the
        # builder's liveness is exactly that predicate).
        live = [cid for cid in jp.live if cid not in touched]
        for cid in touched:
            if cid not in dict_cids and M.get(cid, 0) > floor(cid):
                live.append(cid)

        # Admission heap, identical tuples to the cold builder's (the
        # tie-break keys come from the pattern objects, so the order is
        # invariant under id assignment).
        heap = []
        for cid in live:
            hk = heap_keys.get(cid)
            if hk is None:
                pat = patterns[cid]
                hk = (pat.dictionary_size(), str(pat), pat)
                heap_keys[cid] = hk
            heap.append((floor(cid) - M[cid],) + hk)
        heapq.heapify(heap)
        admitted_cids: List[int] = []
        while heap and len(admitted_cids) < k:
            _, _, _, cand = heapq.heappop(heap)
            admitted_cids.append(ids[cand])
        # The pass must admit exactly the recorded sequence: rewriting
        # tries candidates in admission order, so even a reorder within
        # a pass can change a tie-break — and with it the slots the
        # recorded deltas of unchanged functions were measured against.
        # Any divergence means the edit perturbed what wins: build cold.
        if admitted_cids != jp.admitted:
            return None
        for cid in admitted_cids:
            if cid not in dict_cids:
                dict_cids.add(cid)
                dictionary.append(patterns[cid])

        # Rewrite only the changed functions; unchanged functions'
        # recorded final slots already reflect every admission.
        rescan = set()
        if admitted_cids:
            combos_by_first, singles_by_shape = prepare_rewrite(
                [patterns[c] for c in admitted_cids])
            for i in changed:
                if rewrite_function(new_fns[i], combos_by_first,
                                    singles_by_shape):
                    rescan.add(i)

        pass_stats.append(PassStats(
            candidates=candidates,
            admitted=len(admitted_cids),
            seconds=time.perf_counter() - tp,
        ))
        if journal:
            new_passes.append(PassJournal(
                deltas=new_deltas,
                live=sorted(live),
                admitted=admitted_cids,
                candidates=candidates,
            ))
        if len(admitted_cids) < k:
            if p != last:
                return None  # inconsistent journal
            break
    else:
        # Every recorded pass admitted a full K, i.e. the recorded build
        # stopped on max_passes; so does the replay.
        pass

    # Charge setup/seeding time (everything outside the per-pass loop
    # bodies) to the first pass, so BuildResult.seconds is wall time.
    if pass_stats:
        extra = (time.perf_counter() - t0
                 - sum(s.seconds for s in pass_stats))
        first = pass_stats[0]
        pass_stats[0] = PassStats(
            candidates=first.candidates,
            admitted=first.admitted,
            seconds=first.seconds + max(0.0, extra),
        )

    slots = SlotProgram(program.name, entry=program.entry)
    for i, fn in enumerate(prev.slots.functions):
        slots.functions.append(new_fns[i] if i in changed else fn)

    new_journal: Optional[BuildJournal] = None
    if journal:
        new_journal = BuildJournal(
            config_sig=j.config_sig,
            patterns=patterns,
            ids=ids,
            base_seed=base_seed,
            passes=new_passes,
            seen=sorted(seen),
            candidates_tested=len(seen),
        )
    return BuildResult(
        slots=slots,
        dictionary=dictionary,
        candidates_tested=len(seen),
        passes=len(pass_stats),
        base_patterns=base_patterns,
        pass_stats=pass_stats,
        workers=1,
        warm_patterns=0,
        journal=new_journal,
    )


def incremental_compress(
    program: VMProgram,
    prev_program: VMProgram,
    prev_build: BuildResult,
    k: int = 20,
    abundant_memory: bool = False,
    max_passes: int = 40,
    journal: bool = True,
):
    """Compress ``program`` by replaying ``prev_build``'s journal.

    ``prev_program`` is the program ``prev_build`` compressed; the two
    are aligned function-by-function to find the edited set.  Returns a
    :class:`repro.brisc.CompressedProgram` byte-identical to a cold
    ``compress(program, ...)``, or ``None`` when replay cannot guarantee
    that (the caller should compress cold).
    """
    changed = changed_functions(prev_program, program)
    if changed is None:
        return None
    build = replay_build(program, prev_build, changed, k=k,
                         abundant_memory=abundant_memory,
                         max_passes=max_passes, journal=journal)
    if build is None:
        return None
    from . import CompressedProgram
    from .encode import encode_image

    image, model = encode_image(build.slots, program.globals)
    return CompressedProgram(image=image, build=build, model=model)
