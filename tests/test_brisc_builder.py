"""Greedy BRISC dictionary construction tests, including the paper's
worked cost-benefit example."""


import repro
from repro.brisc.builder import build_dictionary
from repro.brisc.cost import CostModel, representative_instr
from repro.brisc.pattern import DictPattern, pattern_of_instr
from repro.brisc.slots import build_slots
from repro.vm.asm import parse_function
from repro.vm.instr import Instr, VMProgram
from repro.vm.isa import REG_SP


class TestCostModel:
    def test_w_averages_pentium_and_ppc(self):
        model = CostModel()
        enter = pattern_of_instr(Instr("enter", (REG_SP, REG_SP, 24)))
        w = model.working_set_cost(DictPattern((enter,)))
        assert w > 0

    def test_abundant_memory_zeroes_w(self):
        model = CostModel(abundant_memory=True)
        enter = pattern_of_instr(Instr("enter", (REG_SP, REG_SP, 24)))
        assert model.working_set_cost(DictPattern((enter,))) == 0

    def test_paper_example_small_program_rejects_candidates(self):
        """The paper's worked example: for the tiny `salt` program, "Because
        of their code-generation/interpretation table cost, W, none of the
        candidate instructions are suitable, and the program, as given,
        remains."  A one-occurrence specialization must have negative B."""
        model = CostModel()
        enter = Instr("enter", (REG_SP, REG_SP, 24))
        p = pattern_of_instr(enter).specializations(enter)[0]
        cand = DictPattern((p,))
        # One occurrence saving at most a couple of bytes.
        assert model.benefit(cand, bytes_saved=2) < 0

    def test_many_occurrences_make_benefit_positive(self):
        model = CostModel()
        ld = Instr("ld.iw", (0, 4, REG_SP))
        p = pattern_of_instr(ld).specializations(ld)[2]  # burn base reg
        cand = DictPattern((p,))
        # Hundreds of occurrences, one byte each.
        assert model.benefit(cand, bytes_saved=300) > 0

    def test_representative_instr_uses_burned_values(self):
        enter = Instr("enter", (REG_SP, REG_SP, 24))
        p = pattern_of_instr(enter).specializations(enter)[2]  # burn imm
        rep = representative_instr(p)
        assert rep.operands[2] == 24


class TestBuildSlots:
    def _program(self, body):
        fn = parse_function(body, "main")
        return VMProgram("t", functions=[fn])

    def test_one_slot_per_instruction(self):
        prog = self._program("li n0,1\nli n0,2\nhlt")
        slots = build_slots(prog)
        assert slots.slot_count() == 3

    def test_entry_is_block_start(self):
        slots = build_slots(self._program("hlt"))
        assert slots.functions[0].slots[0].is_block_start

    def test_labels_are_block_starts(self):
        slots = build_slots(self._program("jmp $end\n$end:\nhlt"))
        assert slots.functions[0].slots[1].is_block_start
        assert slots.functions[0].slots[1].labels == ("end",)

    def test_post_call_is_block_start(self):
        callee = parse_function("rjr ra", "f")
        main = parse_function("call f\nhlt", "main")
        prog = VMProgram("t", functions=[main, callee])
        slots = build_slots(prog)
        assert slots.functions[0].slots[1].is_block_start


class TestGreedyConstruction:
    def _compile(self, src):
        return repro.compile_c(src)

    def test_repetitive_program_learns_patterns(self):
        # Many functions with identical shape: specializations and
        # combinations must be admitted.
        fns = "\n".join(
            f"int f{i}(int a, int b) {{ return a * {i} + b; }}"
            for i in range(40)
        )
        prog = self._compile(fns + "\nint main(void) { return f1(1, 2); }")
        result = build_dictionary(prog, k=8)
        assert result.dictionary_size > result.base_patterns
        assert result.candidates_tested > 100

    def test_learned_patterns_shrink_encoding(self):
        fns = "\n".join(
            f"int f{i}(int a, int b) {{ return a * {i} + b; }}"
            for i in range(40)
        )
        prog = self._compile(fns + "\nint main(void) { return f1(1, 2); }")
        before = build_slots(prog).encoded_code_size()
        result = build_dictionary(prog, k=8)
        assert result.slots.encoded_code_size() < before

    def test_combination_merges_slots(self):
        fns = "\n".join(
            f"int f{i}(int a) {{ return a + {i}; }}" for i in range(30)
        )
        prog = self._compile(fns + "\nint main(void) { return f1(1); }")
        result = build_dictionary(prog, k=8)
        merged = any(
            len(slot.insns) > 1
            for fn in result.slots.functions
            for slot in fn.slots
        )
        assert merged

    def test_combined_slots_never_span_block_starts(self):
        prog = self._compile(
            "int main(void) { int s = 0;"
            " for (int i = 0; i < 9; i++) s += i; return s; }"
        )
        result = build_dictionary(prog, k=8)
        for fn in result.slots.functions:
            for slot in fn.slots[1:]:
                # A block-start slot exists as its own slot (it was never
                # merged into its predecessor).
                assert slot.insns  # structural sanity
        # And every slot's pattern still matches its instructions.
        for fn in result.slots.functions:
            for slot in fn.slots:
                assert slot.pattern.matches(slot.insns)

    def test_abundant_memory_learns_at_least_as_many(self):
        fns = "\n".join(
            f"int f{i}(int a, int b) {{ return (a ^ {i}) + b; }}"
            for i in range(25)
        )
        prog = self._compile(fns + "\nint main(void) { return f1(1, 2); }")
        constrained = build_dictionary(prog, k=6)
        abundant = build_dictionary(prog, k=6, abundant_memory=True)
        assert abundant.dictionary_size >= constrained.dictionary_size

    def test_tiny_program_keeps_base_patterns_only(self):
        """The paper: small programs afford no useful candidates."""
        prog = self._compile("int main(void) { return 3; }")
        result = build_dictionary(prog, k=20)
        assert result.dictionary_size == result.base_patterns

    def test_max_passes_bounds_work(self):
        prog = self._compile("int main(void) { return 3; }")
        result = build_dictionary(prog, k=20, max_passes=1)
        assert result.passes == 1


class TestParallelDeterminism:
    """The sharded scan must admit the same dictionary, in the same order,
    as the serial builder: per-function savings merge by addition and the
    admission heap's tie-break is a total order, so worker count is
    invisible in the output."""

    @staticmethod
    def _fingerprint(result):
        slots = [
            [(str(s.pattern), s.insns) for s in fn.slots]
            for fn in result.slots.functions
        ]
        return ([str(p) for p in result.dictionary], slots,
                result.candidates_tested, result.passes,
                result.base_patterns)

    def test_workers_match_serial_on_corpus_units(self):
        from repro.corpus.samples import SAMPLES

        for name in ("wc", "sort"):
            prog = repro.compile_c(SAMPLES[name], name)
            serial = build_dictionary(prog)
            parallel = build_dictionary(prog, workers=2)
            assert self._fingerprint(serial) == self._fingerprint(parallel)

    def test_workers_recorded_in_result(self):
        from repro.corpus.samples import SAMPLES

        prog = repro.compile_c(SAMPLES["wc"], "wc")
        result = build_dictionary(prog, workers=2)
        assert result.workers == 2
        assert build_dictionary(prog).workers == 1

    def test_pass_stats_cover_every_pass(self):
        from repro.corpus.samples import SAMPLES

        prog = repro.compile_c(SAMPLES["wc"], "wc")
        result = build_dictionary(prog)
        assert len(result.pass_stats) == result.passes
        assert all(p.seconds >= 0 for p in result.pass_stats)
        # Pass counters reconcile with the build totals.
        assert sum(p.candidates for p in result.pass_stats) \
            == result.candidates_tested
        admitted = sum(p.admitted for p in result.pass_stats)
        assert admitted == result.dictionary_size - result.base_patterns
        assert result.seconds == sum(p.seconds for p in result.pass_stats)

    def test_invalid_worker_counts_clamp_to_serial(self):
        prog = self._small()
        assert build_dictionary(prog, workers=0).workers == 1
        assert build_dictionary(prog, workers=-3).workers == 1

    @staticmethod
    def _small():
        return repro.compile_c("int main(void) { return 3; }")
