"""Command-line interface: compile, run, compress, and inspect C programs.

Usage::

    python -m repro run prog.c                 # compile and execute
    python -m repro dump-ir prog.c             # lcc-style trees
    python -m repro dump-asm prog.c            # RISC VM assembly
    python -m repro sizes prog.c               # every representation's size
    python -m repro wire prog.c -o prog.wire   # emit the wire format
    python -m repro brisc prog.c -o prog.brisc # emit a BRISC image
    python -m repro exec-brisc prog.brisc      # interpret an image in place
"""

from __future__ import annotations

import argparse
import sys

from .brisc import compress, run_image
from .cfront import CompileError, compile_to_ast
from .codegen import generate_program
from .compress import deflate
from .ir import dump_module, lower_unit
from .native import PentiumLike, SparcLike
from .vm import format_function, program_size, run_program
from .wire import encode_module, wire_size


def _load(path: str):
    with open(path) as f:
        source = f.read()
    module = lower_unit(compile_to_ast(source, path), path)
    return module


def cmd_run(args) -> int:
    program = generate_program(_load(args.file))
    result = run_program(program, max_steps=args.max_steps)
    sys.stdout.write(result.output)
    if args.stats:
        print(f"\n[{result.steps} instructions executed]", file=sys.stderr)
    return result.exit_code


def cmd_dump_ir(args) -> int:
    print(dump_module(_load(args.file)))
    return 0


def cmd_dump_asm(args) -> int:
    program = generate_program(_load(args.file))
    for fn in program.functions:
        print(format_function(fn))
        print()
    return 0


def cmd_sizes(args) -> int:
    module = _load(args.file)
    program = generate_program(module)
    vm = program_size(program)
    sparc = SparcLike().program_size(program)
    pentium = PentiumLike().program_size(program)
    from .bench.measure import vm_code_bytes

    gz = len(deflate.compress(vm_code_bytes(program)))
    wire = wire_size(module, code_only=True)
    cp = compress(program)
    print(f"SPARC-like native   : {sparc:8d} B")
    print(f"Pentium-like native : {pentium:8d} B")
    print(f"VM binary encoding  : {vm:8d} B")
    print(f"deflate(VM code)    : {gz:8d} B")
    print(f"wire format (code)  : {wire:8d} B")
    print(f"BRISC code segment  : {cp.image.code_segment_size:8d} B"
          f"  ({cp.image.pattern_count} patterns)")
    return 0


def cmd_wire(args) -> int:
    blob = encode_module(_load(args.file))
    with open(args.output, "wb") as f:
        f.write(blob)
    print(f"wrote {len(blob)} bytes to {args.output}")
    return 0


def cmd_brisc(args) -> int:
    program = generate_program(_load(args.file))
    cp = compress(program, k=args.k)
    with open(args.output, "wb") as f:
        f.write(cp.image.blob)
    print(f"wrote {cp.size} bytes to {args.output} "
          f"(code segment {cp.image.code_segment_size}, "
          f"{cp.image.pattern_count} patterns)")
    return 0


def cmd_exec_brisc(args) -> int:
    with open(args.file, "rb") as f:
        blob = f.read()
    result = run_image(blob, max_steps=args.max_steps)
    sys.stdout.write(result.output)
    return result.exit_code


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Code Compression (PLDI 1997) reproduction toolchain",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="compile a C file and execute it")
    p.add_argument("file")
    p.add_argument("--max-steps", type=int, default=200_000_000)
    p.add_argument("--stats", action="store_true")
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("dump-ir", help="print the lcc-style trees")
    p.add_argument("file")
    p.set_defaults(fn=cmd_dump_ir)

    p = sub.add_parser("dump-asm", help="print the RISC VM assembly")
    p.add_argument("file")
    p.set_defaults(fn=cmd_dump_asm)

    p = sub.add_parser("sizes", help="compare representation sizes")
    p.add_argument("file")
    p.set_defaults(fn=cmd_sizes)

    p = sub.add_parser("wire", help="emit the wire format")
    p.add_argument("file")
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(fn=cmd_wire)

    p = sub.add_parser("brisc", help="compress to a BRISC image")
    p.add_argument("file")
    p.add_argument("-o", "--output", required=True)
    p.add_argument("-k", type=int, default=20,
                   help="patterns admitted per pass (paper: 20)")
    p.set_defaults(fn=cmd_brisc)

    p = sub.add_parser("exec-brisc", help="interpret a BRISC image in place")
    p.add_argument("file")
    p.add_argument("--max-steps", type=int, default=200_000_000)
    p.set_defaults(fn=cmd_exec_brisc)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except CompileError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:  # output piped into head etc.
        return 0


if __name__ == "__main__":
    sys.exit(main())
