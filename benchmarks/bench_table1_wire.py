"""Table 1 — wire-format sizes (paper section "A wire code").

The paper's table compares, per program, the conventional SPARC code
segment, its gzipped form, and the wire code:

    program   uncompressed   gzipped   wire
    icc       315,636        75,928    64,475
    gcc       1,381,304      380,451   287,260
    wep       61,036         15,936    16,013

giving a best factor of 4.9x over conventional code, beating gzip on all
but the smallest input.  This bench regenerates the same rows over our
suite (wc/lcc/gcc stand-ins) and checks the shape: wire beats gzip on the
larger inputs, and the wire factor is well beyond 3x.
"""

import pytest

from conftest import save_table
from repro.bench import wire_row, wire_table
from repro.corpus import build_input
from repro.wire import encode_module


@pytest.mark.parametrize("name", ["wc", "lcc", "gcc"])
def test_wire_encode_throughput(benchmark, name):
    """Benchmark the wire encoder itself (the per-release packaging cost)."""
    module = build_input(name).module
    blob = benchmark.pedantic(lambda: encode_module(module),
                              rounds=1, iterations=1)
    benchmark.extra_info["wire_bytes"] = len(blob)


def test_table1_rows(benchmark, results_dir):
    """Regenerate the full table and check the paper's shape claims."""
    rows = benchmark.pedantic(
        lambda: [wire_row(n) for n in ("wc", "lcc", "gcc")],
        rounds=1, iterations=1)
    save_table(results_dir, "table1_wire", wire_table(rows))

    by_name = {r.name: r for r in rows}
    # Shape claim 1: the wire format improves significantly over
    # conventional encodings (paper: up to 4.9x; require > 3x here).
    assert by_name["gcc"].wire_factor > 3.0
    assert by_name["lcc"].wire_factor > 3.0
    # Shape claim 2: it matches or beats gzip on the larger inputs.  (The
    # paper's corpus shows a ~25% win; our synthetic corpus is unusually
    # LZ-friendly — see EXPERIMENTS.md — so parity is the bar here.)
    assert by_name["gcc"].wire < by_name["gcc"].gzipped * 1.15
    assert by_name["lcc"].wire < by_name["lcc"].gzipped * 1.25
    # ...and the paper itself concedes "a small loss on the smallest
    # input", so wc may go either way; just require the same magnitude.
    assert by_name["wc"].wire < by_name["wc"].gzipped * 3
