"""Corpus-level shared BRISC dictionaries (warm starts).

The paper builds one pattern dictionary per program; the MIPS code
compression literature observes that instruction statistics are stable
*across* programs, which is exactly the property a corpus-level shared
dictionary exploits.  :func:`build_shared_dictionary` runs the greedy
builder once over the concatenated slot programs of a whole corpus; the
admitted (non-base) patterns become a :class:`SharedDictionary` that
per-unit builds admit before their first pass, so each unit's passes
only score deltas against the cross-unit warm start.

A shared dictionary is content-addressed: its :attr:`digest` covers the
serialized pattern list, so the pipeline can hash it into the brisc
stage's cache key, and the cluster's cache federation can ship it
between nodes like any other artifact (a "fleet dictionary").  Warm
patterns a unit never uses are free — the image encoder emits only
patterns the unit's slots reference.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..compress.bitio import read_uvarint, write_uvarint
from ..vm.instr import VMProgram
from .builder import BriscBuilder, BuildResult
from .pattern import DictPattern, deserialize_pattern, serialize_pattern
from .slots import SlotProgram, build_slots

__all__ = ["SharedDictionary", "build_shared_dictionary", "merge_slot_programs"]


@dataclass(frozen=True)
class SharedDictionary:
    """An ordered, content-addressed set of cross-unit patterns."""

    patterns: Tuple[DictPattern, ...]

    @property
    def digest(self) -> str:
        """SHA-256 over the serialized patterns (cached per instance)."""
        cached = self.__dict__.get("_digest")
        if cached is None:
            cached = hashlib.sha256(self.serialize()).hexdigest()
            self.__dict__["_digest"] = cached
        return cached

    def __len__(self) -> int:
        return len(self.patterns)

    def serialize(self) -> bytes:
        """Pattern count, then each pattern in the dictionary wire form."""
        out = bytearray()
        write_uvarint(out, len(self.patterns))
        for pattern in self.patterns:
            out += serialize_pattern(pattern)
        return bytes(out)

    @classmethod
    def deserialize(cls, blob: bytes) -> "SharedDictionary":
        count, pos = read_uvarint(blob, 0)
        patterns: List[DictPattern] = []
        for _ in range(count):
            pattern, pos = deserialize_pattern(blob, pos)
            patterns.append(pattern)
        return cls(patterns=tuple(patterns))


def merge_slot_programs(
    programs: Sequence[Union[VMProgram, SlotProgram]],
    name: str = "<corpus>",
) -> SlotProgram:
    """One slot program holding every unit's functions, in input order.

    Function names may collide across units; the builder never keys on
    them, so collisions are harmless here.
    """
    merged = SlotProgram(name)
    for program in programs:
        slots = (program if isinstance(program, SlotProgram)
                 else build_slots(program))
        merged.functions.extend(slots.functions)
    return merged


def build_shared_dictionary(
    programs: Sequence[Union[VMProgram, SlotProgram]],
    k: int = 20,
    abundant_memory: bool = False,
    max_passes: int = 40,
    workers: Optional[int] = None,
) -> Tuple[SharedDictionary, BuildResult]:
    """Greedy construction over the whole corpus at once.

    Returns the shared dictionary (the admitted patterns only — base
    patterns are re-seeded per unit anyway) plus the corpus-level
    :class:`BuildResult` for reporting.
    """
    merged = merge_slot_programs(programs)
    result = BriscBuilder(merged, k=k, abundant_memory=abundant_memory,
                          max_passes=max_passes, workers=workers).run()
    admitted = tuple(result.dictionary[result.base_patterns:])
    return SharedDictionary(patterns=admitted), result
