"""The resilient service front end over the compression pipeline.

A long-lived asyncio server (:class:`CompressionService`) exposes
compile / wire / brisc / verify requests over a length-prefixed,
CRC-framed protocol (:mod:`repro.service.protocol`), backed by one
shared :class:`repro.pipeline.Toolchain` whose tiered cache is the warm
store.  The interesting part is the robustness layer: per-request
deadlines that cancel pipeline work, a bounded admission queue with
load shedding, per-unit circuit breakers, liveness/readiness probes,
and graceful drain.  :class:`ServiceClient` is the small blocking
client; ``python -m repro serve`` / ``python -m repro client`` are the
CLI pair.
"""

from .client import RemoteServiceError, ServiceClient
from .protocol import (
    MAX_FRAME_BYTES, decode_message, encode_message, error_payload,
    read_frame_sync,
)
from .server import BackgroundService, CompressionService, ServiceConfig

__all__ = [
    "BackgroundService",
    "CompressionService",
    "MAX_FRAME_BYTES",
    "RemoteServiceError",
    "ServiceClient",
    "ServiceConfig",
    "decode_message",
    "encode_message",
    "error_payload",
    "read_frame_sync",
]
