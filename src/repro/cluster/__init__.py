"""Sharded compile farm: consistent-hash routing + cache federation.

The cluster layer turns N independent :class:`~repro.service.CompressionService`
nodes into one logical service:

* :mod:`.ring` — the consistent-hash ring that assigns unit keys to
  nodes and keeps assignments stable when membership changes;
* :mod:`.federation` — peer-to-peer warm-store fills over the RSV1
  ``cache_peek``/``cache_pull`` ops (content-addressed keys make an
  artifact transfer a verified byte copy);
* :mod:`.router` — the front-end process clients actually talk to:
  health-checked routing, transport-failure failover, idempotent
  replay under the PR 4 error taxonomy's retry rules;
* :mod:`.supervisor` — local fleets of real ``repro serve``
  subprocesses, SIGKILL-able for chaos runs;
* :mod:`.harness` — ``python -m repro cluster``: batch + chaos driver
  asserting byte-identical results and federation refills.
"""

from .federation import ArtifactPeer, FederatedCache, make_peers, parse_address
from .harness import ClusterReport, format_report, run_cluster
from .ring import HashRing
from .router import BackgroundRouter, ClusterRouter, RouterConfig
from .supervisor import ClusterSupervisor, allocate_ports

__all__ = [
    "ArtifactPeer",
    "BackgroundRouter",
    "ClusterReport",
    "ClusterRouter",
    "ClusterSupervisor",
    "FederatedCache",
    "HashRing",
    "RouterConfig",
    "allocate_ports",
    "format_report",
    "make_peers",
    "parse_address",
    "run_cluster",
]
