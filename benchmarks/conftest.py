"""Shared benchmark configuration.

Heavy artifacts (suite compilation, BRISC dictionaries) are cached inside
:mod:`repro.bench.measure`, so benchmark functions only re-run the cheap
kernel under measurement.  Every table printed here is also written to
``benchmarks/results/`` for EXPERIMENTS.md.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_table(results_dir, name: str, text: str) -> None:
    """Persist a rendered table and echo it to the terminal."""
    (results_dir / f"{name}.txt").write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}")
