"""End-to-end code generation tests: compile C, run on the VM, check output.

This is the main correctness suite for the whole pipeline (front end, IR,
codegen, interpreter): each case is a miniature program with a known
deterministic result.
"""

import pytest

import repro
from repro.vm import VMError


def run_c(src, **kwargs):
    return repro.run(repro.compile_c(src), **kwargs)


def returns(src, **kwargs):
    return run_c(f"int main(void) {{ {src} }}", **kwargs).exit_code


def prints(src, **kwargs):
    return run_c(src, **kwargs).output


class TestArithmetic:
    def test_literal_arithmetic(self):
        assert returns("return 2 + 3 * 4;") == 14

    def test_division_truncates_toward_zero(self):
        assert returns("int a = -7; return a / 2;") == -3

    def test_modulo_negative(self):
        assert returns("int a = -7; return a % 3;") == -1

    def test_unsigned_compare(self):
        assert returns("unsigned a = 0; return (a - 1u) > 100u;") == 1

    def test_signed_overflow_wraps(self):
        assert returns(
            "int a = 2147483647; return a + 1 == -2147483647 - 1;") == 1

    def test_shifts(self):
        assert returns("int a = -16; return (a >> 2) + (1 << 4);") == 12

    def test_unsigned_right_shift_logical(self):
        assert returns("unsigned a = 0x80000000u; return (a >> 31) == 1u;") == 1

    def test_bitwise_ops(self):
        assert returns("return (12 & 10) | (5 ^ 3);") == 14

    def test_complement(self):
        assert returns("int a = 0; return ~a;") == -1

    def test_unary_minus(self):
        assert returns("int a = 5; return -a + 10;") == 5

    def test_char_arithmetic_promotes(self):
        assert returns("char c = 'z'; return c - 'a';") == 25

    def test_char_wraps_on_store(self):
        assert returns("char c = 300; return c;") == 300 - 256

    def test_short_truncation(self):
        assert returns("short s = 70000; return s;") == 70000 - 65536

    def test_unsigned_char_zero_extends(self):
        assert returns("unsigned char c = 200; return c;") == 200


class TestDoubles:
    def test_double_literal_printing(self):
        assert prints("int main(void) { print_double(2.5); return 0; }") \
            == "2.5"

    def test_mixed_arithmetic(self):
        assert prints(
            "int main(void) { print_double(1 + 0.5); return 0; }") == "1.5"

    def test_double_compare(self):
        assert returns("double a = 0.1; double b = 0.2; return a < b;") == 1

    def test_double_to_int_truncates(self):
        assert returns("double d = 3.99; return (int)d;") == 3

    def test_int_to_double_exact(self):
        assert returns("int i = 7; double d = i; return d == 7.0;") == 1

    def test_double_params_and_return(self):
        assert prints("""
            double scale(double x, double k) { return x * k; }
            int main(void) { print_double(scale(2.0, 3.5)); return 0; }
        """) == "7"

    def test_double_locals_aligned(self):
        assert returns(
            "char c = 1; double d = 2.0; char e = 3; "
            "return c + (int)d + e;") == 6


class TestControlFlow:
    def test_if_else_chain(self):
        assert returns("""
            int x = 7;
            if (x < 5) return 1;
            else if (x < 10) return 2;
            else return 3;
        """) == 2

    def test_while_loop(self):
        assert returns(
            "int i = 0; int s = 0; while (i < 10) { s += i; i++; } return s;"
        ) == 45

    def test_do_while_runs_once(self):
        assert returns("int n = 0; do n++; while (0); return n;") == 1

    def test_for_with_break_continue(self):
        assert returns("""
            int s = 0;
            for (int i = 0; i < 100; i++) {
                if (i % 2) continue;
                if (i > 10) break;
                s += i;
            }
            return s;
        """) == 30

    def test_nested_loops(self):
        assert returns("""
            int c = 0;
            for (int i = 0; i < 5; i++)
                for (int j = 0; j < 5; j++)
                    if (i == j) c++;
            return c;
        """) == 5

    def test_switch_fallthrough(self):
        assert returns("""
            int x = 1, r = 0;
            switch (x) {
            case 0: r += 1;
            case 1: r += 10;
            case 2: r += 100; break;
            case 3: r += 1000;
            }
            return r;
        """) == 110

    def test_switch_default(self):
        assert returns("""
            int r;
            switch (99) { case 1: r = 1; break; default: r = 7; break; }
            return r;
        """) == 7

    def test_switch_no_match_no_default(self):
        assert returns(
            "int r = 3; switch (9) { case 1: r = 0; break; } return r;") == 3

    def test_short_circuit_evaluation(self):
        assert prints("""
            int hits = 0;
            int touch(int v) { hits++; return v; }
            int main(void) {
                int r = touch(0) && touch(1);
                print_int(hits);
                print_int(r);
                r = touch(1) || touch(0);
                print_int(hits);
                print_int(r);
                return 0;
            }
        """) == "1021"

    def test_conditional_expression(self):
        assert returns("int x = 3; return x > 2 ? 10 : 20;") == 10

    def test_conditional_side_effect_only_one_arm(self):
        assert prints("""
            int main(void) {
                int x = 1;
                x ? print_int(1) : print_int(2);
                return 0;
            }
        """) == "1"

    def test_empty_statement(self):
        assert returns(";;; return 5;") == 5


class TestFunctions:
    def test_recursion_factorial(self):
        assert prints("""
            int fact(int n) { return n <= 1 ? 1 : n * fact(n - 1); }
            int main(void) { print_int(fact(7)); return 0; }
        """) == "5040"

    def test_mutual_recursion(self):
        assert returns_helper_even_odd() == "10"

    def test_many_arguments(self):
        assert prints("""
            int sum6(int a, int b, int c, int d, int e, int f) {
                return a + b + c + d + e + f;
            }
            int main(void) { print_int(sum6(1, 2, 3, 4, 5, 6)); return 0; }
        """) == "21"

    def test_function_pointer_call(self):
        assert prints("""
            int add(int a, int b) { return a + b; }
            int mul(int a, int b) { return a * b; }
            int apply(int (*op)(int, int), int x, int y) { return op(x, y); }
            int main(void) {
                print_int(apply(add, 3, 4));
                print_int(apply(mul, 3, 4));
                return 0;
            }
        """) == "712"

    def test_function_pointer_table(self):
        assert prints("""
            int inc(int x) { return x + 1; }
            int dec(int x) { return x - 1; }
            int (*ops[2])(int);
            int main(void) {
                ops[0] = inc; ops[1] = dec;
                print_int(ops[0](10));
                print_int(ops[1](10));
                return 0;
            }
        """) == "119"

    def test_void_function(self):
        assert prints("""
            int g;
            void set(int v) { g = v; }
            int main(void) { set(13); print_int(g); return 0; }
        """) == "13"

    def test_char_parameter(self):
        assert prints("""
            int code(char c) { return c + 1; }
            int main(void) { print_int(code('a')); return 0; }
        """) == "98"

    def test_deep_call_chain(self):
        assert prints("""
            int f0(int x) { return x + 1; }
            int f1(int x) { return f0(x) + 1; }
            int f2(int x) { return f1(x) + 1; }
            int f3(int x) { return f2(x) + 1; }
            int main(void) { print_int(f3(0)); return 0; }
        """) == "4"


def returns_helper_even_odd():
    return prints("""
        int is_odd(int n);
        int is_even(int n) { return n == 0 ? 1 : is_odd(n - 1); }
        int is_odd(int n) { return n == 0 ? 0 : is_even(n - 1); }
        int main(void) { print_int(is_even(10)); print_int(is_odd(10));
                         return 0; }
    """)


class TestPointersAndArrays:
    def test_array_sum(self):
        assert returns(
            "int a[5]; for (int i = 0; i < 5; i++) a[i] = i * i;"
            " int s = 0; for (int i = 0; i < 5; i++) s += a[i]; return s;"
        ) == 30

    def test_pointer_walk(self):
        assert returns("""
            int a[4];
            a[0] = 1; a[1] = 2; a[2] = 3; a[3] = 4;
            int *p = a;
            int s = 0;
            while (p < a + 4) s += *p++;
            return s;
        """) == 10

    def test_pointer_arithmetic_scaling(self):
        assert returns("int a[4]; int *p = a; return (int)(p + 1 - p);") == 1

    def test_address_of_local(self):
        assert returns("int x = 5; int *p = &x; *p = 9; return x;") == 9

    def test_swap_through_pointers(self):
        assert prints("""
            void swap(int *a, int *b) { int t = *a; *a = *b; *b = t; }
            int main(void) {
                int x = 1, y = 2;
                swap(&x, &y);
                print_int(x); print_int(y);
                return 0;
            }
        """) == "21"

    def test_multidim_array(self):
        assert returns("""
            int m[3][4];
            for (int i = 0; i < 3; i++)
                for (int j = 0; j < 4; j++)
                    m[i][j] = i * 10 + j;
            return m[2][3];
        """) == 23

    def test_global_array_init(self):
        assert prints("""
            int t[4] = {2, 4, 8, 16};
            int main(void) { print_int(t[0] + t[3]); return 0; }
        """) == "18"

    def test_string_walk(self):
        assert prints("""
            int main(void) {
                char *s = "hello";
                int n = 0;
                while (s[n]) n++;
                print_int(n);
                return 0;
            }
        """) == "5"

    def test_local_array_initializer(self):
        assert returns("int a[3] = {5, 6}; return a[0] + a[1] + a[2];") == 11

    def test_local_string_initializer(self):
        assert returns('char s[] = "ab"; return s[0] + s[1] + s[2];') == \
            ord("a") + ord("b")

    def test_void_pointer_roundtrip(self):
        assert returns("""
            int x = 77;
            void *v = &x;
            int *p = (int *)v;
            return *p;
        """) == 77

    def test_malloc_array(self):
        assert returns("""
            int *a = (int *)malloc(10 * sizeof(int));
            for (int i = 0; i < 10; i++) a[i] = i;
            return a[9];
        """) == 9


class TestStructs:
    def test_member_access(self):
        assert returns("""
            struct P { int x; int y; };
            struct P p;
            p.x = 3; p.y = 4;
            return p.x * p.y;
        """) == 12

    def test_struct_pointer(self):
        assert prints("""
            struct P { int x; int y; };
            void init(struct P *p) { p->x = 10; p->y = 20; }
            int main(void) {
                struct P p;
                init(&p);
                print_int(p.x + p.y);
                return 0;
            }
        """) == "30"

    def test_struct_assignment_copies(self):
        assert returns("""
            struct P { int x; int y; };
            struct P a, b;
            a.x = 1; a.y = 2;
            b = a;
            a.x = 99;
            return b.x + b.y;
        """) == 3

    def test_nested_struct(self):
        assert returns("""
            struct In { int v; };
            struct Out { struct In in; int w; };
            struct Out o;
            o.in.v = 6; o.w = 7;
            return o.in.v * o.w;
        """) == 42

    def test_array_of_structs(self):
        assert returns("""
            struct P { int x; int y; };
            struct P ps[3];
            for (int i = 0; i < 3; i++) { ps[i].x = i; ps[i].y = i * 2; }
            return ps[2].x + ps[2].y;
        """) == 6

    def test_linked_list(self):
        assert prints("""
            struct Node { int v; struct Node *next; };
            int main(void) {
                struct Node *head = 0;
                for (int i = 1; i <= 4; i++) {
                    struct Node *n = (struct Node *)malloc(sizeof(struct Node));
                    n->v = i;
                    n->next = head;
                    head = n;
                }
                int s = 0;
                while (head) { s = s * 10 + head->v; head = head->next; }
                print_int(s);
                return 0;
            }
        """) == "4321"

    def test_union_shares_storage(self):
        assert returns("""
            union U { int i; char c; };
            union U u;
            u.i = 0x41424344;
            return u.c;
        """) == 0x44  # little-endian low byte

    def test_struct_with_double(self):
        assert prints("""
            struct M { int n; double v; };
            int main(void) {
                struct M m;
                m.n = 2; m.v = 1.25;
                print_double(m.v * m.n);
                return 0;
            }
        """) == "2.5"


class TestGlobalsAndStatics:
    def test_global_counter(self):
        assert prints("""
            int counter;
            void bump(void) { counter++; }
            int main(void) {
                bump(); bump(); bump();
                print_int(counter);
                return 0;
            }
        """) == "3"

    def test_static_local_persists(self):
        assert prints("""
            int next_id(void) { static int id = 100; return id++; }
            int main(void) {
                print_int(next_id());
                print_int(next_id());
                print_int(next_id());
                return 0;
            }
        """) == "100101102"

    def test_global_double(self):
        assert prints("""
            double ratio = 0.5;
            int main(void) { print_double(ratio * 8.0); return 0; }
        """) == "4"

    def test_global_struct_init(self):
        assert prints("""
            struct P { int x; int y; };
            struct P origin = {3, 4};
            int main(void) { print_int(origin.x + origin.y); return 0; }
        """) == "7"


class TestRuntimeFaults:
    def test_division_by_zero_faults(self):
        with pytest.raises(VMError):
            returns("int z = 0; return 5 / z;")

    def test_null_dereference_faults(self):
        with pytest.raises(VMError):
            returns("int *p = 0; return *p;")

    def test_infinite_loop_hits_budget(self):
        with pytest.raises(VMError):
            returns("for (;;) ; return 0;", max_steps=10_000)
