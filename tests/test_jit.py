"""BRISC JIT tests: template splicing, determinism, throughput."""


import repro
from repro.brisc import compress
from repro.corpus.samples import SAMPLES
from repro.jit import BriscJIT, jit_compile
from repro.native import PPCLike, PentiumLike


def image_for(name):
    return compress(repro.compile_c(SAMPLES[name], name)).image.blob


class TestCompilation:
    def test_produces_output(self):
        result = jit_compile(image_for("wc"))
        assert result.output_bytes > 0
        assert result.slots_compiled > 0

    def test_deterministic(self):
        blob = image_for("wc")
        a = jit_compile(blob).native_code
        b = jit_compile(blob).native_code
        assert a == b

    def test_output_size_matches_native_model(self):
        """Template splicing must produce exactly the per-instruction
        native sizes of the target model."""
        prog = repro.compile_c(SAMPLES["wc"], "wc")
        cp = compress(prog)
        target = PentiumLike()
        result = jit_compile(cp.image.blob, target)
        expected = target.program_size(prog)
        # The JIT compiles from patterns with representative operands, so
        # variable-length immediates may differ slightly — within 15%.
        assert abs(result.output_bytes - expected) <= expected * 0.15

    def test_ppc_target_produces_fixed_width(self):
        result = jit_compile(image_for("wc"), PPCLike())
        assert result.output_bytes % 4 == 0

    def test_offset_map_monotonic(self):
        jit = BriscJIT(image_for("calc"))
        native, offsets = jit.compile_function(0)
        keys = sorted(offsets)
        values = [offsets[k] for k in keys]
        assert values == sorted(values)
        assert values[0] == 0

    def test_every_function_compiled(self):
        blob = image_for("strings")
        jit = BriscJIT(blob)
        result = jit.compile_program()
        assert result.slots_compiled >= len(jit.image.functions)


class TestThroughput:
    def test_mb_per_second_positive(self):
        result = jit_compile(image_for("sort"))
        assert result.mb_per_second > 0

    def test_compile_time_linear_in_input(self):
        """The paper's point: template splicing is linear (no super-linear
        register allocation), so doubling the input roughly doubles the
        work, not more."""
        small = jit_compile(image_for("wc"))
        big = jit_compile(image_for("sort"))
        assert big.slots_compiled > small.slots_compiled
        # Bytes out per slot is bounded: no blowup with size.
        ratio_small = small.output_bytes / small.slots_compiled
        ratio_big = big.output_bytes / big.slots_compiled
        assert 0.3 < ratio_big / ratio_small < 3.0
