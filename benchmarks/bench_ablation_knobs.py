"""Compressor-knob ablations the paper describes in passing.

* **K** — "the compressor removes the K best candidates from the heap"
  and stops "after a pass that doesn't yield at least K patterns for which
  B is positive"; the results table uses K=20.  Sweeping K trades passes
  (compression time) against how greedy each step is.
* **Abundant memory** — "of course, in abundant memory situations we can
  set B equal to P": dropping the W term admits more patterns and shrinks
  the program further at the cost of decompressor tables.
"""

import pytest

from conftest import save_table
from repro.bench import render_table
from repro.brisc import compress
from repro.cfront import compile_to_ast
from repro.codegen import generate_program
from repro.corpus import generate_program_source
from repro.ir import lower_unit


@pytest.fixture(scope="module")
def medium_program():
    source = generate_program_source(functions=60, seed=33)
    return generate_program(lower_unit(compile_to_ast(source, "m"), "m"))


def test_k_sweep(benchmark, results_dir, medium_program):
    def sweep():
        rows = []
        for k in (5, 20, 50):
            cp = compress(medium_program, k=k)
            rows.append([str(k), str(cp.image.code_segment_size),
                         str(cp.build.dictionary_size),
                         str(cp.build.passes)])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_table(results_dir, "ablation_k",
               render_table(["K", "code segment B", "dictionary", "passes"],
                            rows))
    sizes = {int(r[0]): int(r[1]) for r in rows}
    passes = {int(r[0]): int(r[3]) for r in rows}
    # Shape: a larger K converges in fewer passes, and final sizes stay in
    # the same neighbourhood (greediness granularity, not search power).
    assert passes[50] <= passes[5]
    assert max(sizes.values()) < min(sizes.values()) * 1.3


def test_abundant_memory(benchmark, results_dir, medium_program):
    def run_both():
        constrained = compress(medium_program, k=20)
        abundant = compress(medium_program, k=20, abundant_memory=True)
        return constrained, abundant

    constrained, abundant = benchmark.pedantic(run_both, rounds=1,
                                               iterations=1)
    rows = [
        ["B = P - W", str(constrained.image.breakdown["code"]),
         str(constrained.build.dictionary_size)],
        ["B = P (abundant)", str(abundant.image.breakdown["code"]),
         str(abundant.build.dictionary_size)],
    ]
    save_table(results_dir, "ablation_abundant",
               render_table(["benefit metric", "code bytes", "dictionary"],
                            rows))
    # Shape: dropping W admits at least as many patterns and never makes
    # the code bytes (excluding tables) larger.
    assert abundant.build.dictionary_size >= constrained.build.dictionary_size
    assert abundant.image.breakdown["code"] <= \
        constrained.image.breakdown["code"] * 1.02
