"""Assembler / disassembler text round-trip tests."""

import pytest

from repro.vm.asm import format_function, format_instr, parse_function
from repro.vm.instr import Instr, VMFunction


class TestFormat:
    def test_memory_style(self):
        assert format_instr(Instr("ld.iw", (0, 4, 14))) == "ld.iw n0,4(sp)"

    def test_paper_example_spelling(self):
        """The paper writes `spill.i n4,16(sp)` and `ble.i n4,0,$L56`."""
        assert format_instr(Instr("spill.i", (4, 16, 14))) == \
            "spill.i n4,16(sp)"
        assert format_instr(Instr("blei.i", (4, 0, "L56"))) == \
            "blei.i n4,0,$L56"

    def test_enter_exit(self):
        assert format_instr(Instr("enter", (14, 14, 24))) == "enter sp,sp,24"

    def test_call_and_rjr(self):
        assert format_instr(Instr("call", ("pepper",))) == "call pepper"
        assert format_instr(Instr("rjr", (15,))) == "rjr ra"

    def test_no_operands(self):
        assert format_instr(Instr("hlt", ())) == "hlt"

    def test_float_registers(self):
        assert format_instr(Instr("add.d", (0, 1, 2))) == "add.d f0,f1,f2"


class TestParse:
    def test_roundtrip_function(self):
        fn = VMFunction("f")
        fn.emit(Instr("enter", (14, 14, 16)))
        fn.emit(Instr("spill.i", (15, 8, 14)))
        fn.define_label("loop")
        fn.emit(Instr("addi.i", (0, 0, 1)))
        fn.emit(Instr("blti.i", (0, 10, "loop")))
        fn.emit(Instr("reload.i", (15, 8, 14)))
        fn.emit(Instr("exit", (14, 14, 16)))
        fn.emit(Instr("rjr", (15,)))
        text = format_function(fn)
        back = parse_function(text, "f")
        assert back.code == fn.code
        assert back.labels == fn.labels

    def test_parse_comments_and_blanks(self):
        fn = parse_function("""
            ; a comment
            li n1,5

            mov.i n0,n1   ; trailing comment
        """)
        assert [i.name for i in fn.code] == ["li", "mov.i"]

    def test_parse_negative_displacement(self):
        fn = parse_function("st.iw n0,-4(sp)")
        assert fn.code[0].operands == (0, -4, 14)

    def test_parse_hex_immediate(self):
        fn = parse_function("li n0,0xff")
        assert fn.code[0].operands == (0, 255)

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(ValueError):
            parse_function("frobnicate n0")

    def test_unknown_register_rejected(self):
        with pytest.raises(ValueError):
            parse_function("mov.i n0,n99")

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError):
            parse_function("mov.i n0")

    def test_label_without_dollar_rejected(self):
        with pytest.raises(ValueError):
            parse_function("jmp loop")

    def test_duplicate_label_rejected(self):
        with pytest.raises(ValueError):
            parse_function("$a:\n$a:\nhlt")
