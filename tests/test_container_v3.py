"""Seekable v3 containers: placement, partial decode, and isolation.

The contract under test (the tentpole's acceptance criteria):

* ``decode_range(blob, start, n)`` over a chunked container is
  byte-identical to slicing the fully-decoded address space — for any
  span, any chunk-size cap, and both placement policies;
* ``decode_function`` touches only the chunks covering the function, so
  it works on *sparse* containers holding just those byte ranges;
* corruption in one chunk raises a typed error for reads of that chunk
  and leaves reads of every other chunk byte-identical.
"""

from random import Random

import pytest

from repro.brisc import compress, decode_image, run_image
from repro.brisc import encode as brisc_encode
from repro.cfront import compile_to_ast
from repro.codegen import generate_program
from repro.container import (
    ChunkPlacement, FunctionExtent, GreedyPlacement, HotColdPlacement,
    assemble_sparse, container_index, container_kind, decode_range_bytes,
    validate_placement,
)
from repro.corpus import get_sample
from repro.errors import (
    CorruptStreamError, DecodeError, UnsupportedFormatError,
)
from repro.faults import corrupt_chunk, fuzz_chunked_container
from repro.ir import dump_function, dump_module, lower_unit
from repro.vm import run_program
from repro.wire import (
    decode_function, decode_module, decode_range, encode_module,
    encode_module_v3, function_image,
)

MULTI = """
int a(int x) { return x + 1; }
int b(int x) { return x * 2; }
int c(int x) { return x - 3; }
int d(int x) { return a(x) + b(x) + c(x); }
int main(void) { print_int(d(5)); putchar('\\n'); return 0; }
"""


def lower(src, name="m"):
    return lower_unit(compile_to_ast(src, name), name)


@pytest.fixture(scope="module")
def wc_module():
    return lower(get_sample("wc"), "wc")


@pytest.fixture(scope="module")
def multi_module():
    return lower(MULTI, "multi")


@pytest.fixture(scope="module")
def multi_program():
    return generate_program(lower(MULTI, "multi"))


# ---------------------------------------------------------------------------
# placement policies
# ---------------------------------------------------------------------------


EXTENTS = [FunctionExtent("f0", 100), FunctionExtent("f1", 200),
           FunctionExtent("f2", 900), FunctionExtent("f3", 50),
           FunctionExtent("f4", 400)]


class TestPlacement:
    def test_greedy_respects_size_cap(self):
        placement = GreedyPlacement(target_bytes=300).place(EXTENTS)
        validate_placement(placement, len(EXTENTS))
        for members in placement:
            size = sum(EXTENTS[i].size for i in members)
            assert size <= 300 or len(members) == 1

    def test_oversize_function_gets_own_chunk(self):
        placement = GreedyPlacement(target_bytes=300).place(EXTENTS)
        assert [2] in placement  # f2 (900 B) cannot share

    def test_greedy_keeps_module_order(self):
        placement = GreedyPlacement(target_bytes=10_000).place(EXTENTS)
        assert placement == [[0, 1, 2, 3, 4]]

    def test_hot_cold_clusters_by_heat(self):
        hot = HotColdPlacement({"f3": 10.0, "f1": 5.0},
                               target_bytes=10_000)
        placement = hot.place(EXTENTS)
        validate_placement(placement, len(EXTENTS))
        flat = [i for members in placement for i in members]
        # The hot functions lead; cold ties keep module order.
        assert flat[:2] == [3, 1] or placement[0][:2] == [1, 3]

    def test_validate_rejects_lost_and_duplicate(self):
        with pytest.raises(ValueError):
            validate_placement([[0, 1]], 3)       # lost index 2
        with pytest.raises(ValueError):
            validate_placement([[0, 1], [1, 2]], 3)  # duplicated index 1
        with pytest.raises(ValueError):
            validate_placement([[0, 3]], 2)       # invented index 3

    def test_base_policy_is_abstract(self):
        with pytest.raises(NotImplementedError):
            ChunkPlacement().place(EXTENTS)

    def test_greedy_rejects_bad_target(self):
        with pytest.raises(ValueError):
            GreedyPlacement(target_bytes=0)


# ---------------------------------------------------------------------------
# wire (WIR3)
# ---------------------------------------------------------------------------


WIRE_PLACEMENTS = [None, GreedyPlacement(256), GreedyPlacement(64),
                   HotColdPlacement({"main": 5.0})]


class TestWireV3:
    def test_v3_full_decode_matches_v2(self, multi_module):
        v2 = decode_module(encode_module(multi_module))
        v3 = decode_module(encode_module_v3(multi_module))
        assert dump_module(v3) == dump_module(v2)

    @pytest.mark.parametrize("placement", WIRE_PLACEMENTS)
    def test_decode_range_matches_full_slice(self, multi_module, placement):
        blob = encode_module_v3(multi_module, placement=placement)
        whole = b"".join(function_image(fn)
                         for fn in decode_module(blob).functions)
        rng = Random(3)
        for _ in range(40):
            start = rng.randrange(len(whole))
            length = rng.randrange(1, len(whole) - start + 1)
            assert decode_range(blob, start, length) == \
                whole[start:start + length]

    def test_decode_range_clamps_like_a_slice(self, wc_module):
        blob = encode_module_v3(wc_module, placement=GreedyPlacement(256))
        whole = b"".join(function_image(fn)
                         for fn in decode_module(blob).functions)
        assert decode_range(blob, len(whole) - 4, 100) == whole[-4:]
        assert decode_range(blob, len(whole) + 10, 5) == b""
        assert decode_range(blob, 0, 0) == b""

    def test_negative_range_is_typed(self, wc_module):
        blob = encode_module_v3(wc_module)
        with pytest.raises(CorruptStreamError):
            decode_range(blob, -1, 5)
        with pytest.raises(CorruptStreamError):
            decode_range(blob, 0, -5)

    def test_decode_function_matches_full_decode(self, multi_module):
        blob = encode_module_v3(multi_module, placement=GreedyPlacement(64))
        full = {fn.name: fn for fn in decode_module(blob).functions}
        for name in full:
            assert dump_function(decode_function(blob, name)) == \
                dump_function(full[name])

    def test_unknown_function_lists_names(self, multi_module):
        blob = encode_module_v3(multi_module)
        with pytest.raises(CorruptStreamError, match="nope"):
            decode_function(blob, "nope")

    def test_sparse_container_serves_one_function(self, multi_module):
        """Only the header + covering chunks suffice for one function."""
        blob = encode_module_v3(multi_module, placement=GreedyPlacement(64))
        index = container_index(blob)
        ranges = index.ranges_for_function("b")
        fetched = sum(n for _, n in ranges)
        assert fetched < len(blob)
        sparse = assemble_sparse(
            len(blob), [(o, blob[o:o + n]) for o, n in ranges])
        assert dump_function(decode_function(sparse, "b")) == \
            dump_function(decode_function(blob, "b"))

    def test_v2_blob_falls_back_to_full_decode(self, multi_module):
        v2 = encode_module(multi_module)
        whole = b"".join(function_image(fn)
                         for fn in decode_module(v2).functions)
        assert decode_range(v2, 3, 40) == whole[3:43]
        assert decode_function(v2, "a").name == "a"

    def test_roundtrip_is_deterministic(self, wc_module):
        one = encode_module_v3(wc_module, placement=GreedyPlacement(256))
        two = encode_module_v3(wc_module, placement=GreedyPlacement(256))
        assert one == two


# ---------------------------------------------------------------------------
# BRISC (BRI3)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def bri2_blob(multi_program):
    return compress(multi_program, k=8, max_passes=6).image.blob


@pytest.fixture(scope="module")
def bri3_blob(bri2_blob):
    return brisc_encode.repack_v3(bri2_blob, GreedyPlacement(64))


class TestBriscV3:
    def test_repack_preserves_the_program(self, bri2_blob, bri3_blob):
        v2 = decode_image(bri2_blob)
        v3 = decode_image(bri3_blob)
        assert [fn.name for fn in v3.functions] == \
            [fn.name for fn in v2.functions]
        assert run_program(v3).output == run_program(v2).output

    def test_chunked_image_still_interprets(self, bri3_blob):
        assert run_image(bri3_blob).output == "18\n"

    def test_repack_is_idempotent(self, bri3_blob):
        again = brisc_encode.repack_v3(bri3_blob, GreedyPlacement(64))
        assert again == bri3_blob

    def test_decode_range_matches_code_bytes(self, bri2_blob, bri3_blob):
        image = brisc_encode.parse_image(bri2_blob)
        whole = b"".join(bytes(fn.code) for fn in image.functions)
        rng = Random(11)
        for _ in range(40):
            start = rng.randrange(len(whole))
            length = rng.randrange(1, len(whole) - start + 1)
            assert brisc_encode.decode_range(bri3_blob, start, length) == \
                whole[start:start + length]

    def test_decode_function_matches_full_parse(self, bri2_blob, bri3_blob):
        full = {fn.name: fn for fn in
                brisc_encode.parse_image(bri2_blob).functions}
        for name in full:
            fn = brisc_encode.decode_function(bri3_blob, name)
            assert bytes(fn.code) == bytes(full[name].code)

    def test_sparse_image_serves_one_function(self, bri3_blob):
        index = container_index(bri3_blob)
        ranges = index.ranges_for_function("c")
        assert sum(n for _, n in ranges) < len(bri3_blob)
        sparse = assemble_sparse(
            len(bri3_blob),
            [(o, bri3_blob[o:o + n]) for o, n in ranges])
        want = brisc_encode.decode_function(bri3_blob, "c")
        got = brisc_encode.decode_function(sparse, "c")
        assert bytes(got.code) == bytes(want.code)

    def test_v2_image_falls_back(self, bri2_blob):
        image = brisc_encode.parse_image(bri2_blob)
        whole = b"".join(bytes(fn.code) for fn in image.functions)
        assert brisc_encode.decode_range(bri2_blob, 2, 9) == whole[2:11]
        assert brisc_encode.decode_function(bri2_blob, "a").name == "a"


# ---------------------------------------------------------------------------
# the shared index / dispatch layer
# ---------------------------------------------------------------------------


class TestContainerIndex:
    def test_kind_dispatch(self, multi_module, bri3_blob):
        assert container_kind(encode_module_v3(multi_module)) == "wire"
        assert container_kind(bri3_blob) == "brisc"
        with pytest.raises(UnsupportedFormatError):
            container_kind(b"ZZZZ not a container")

    def test_ranges_always_cover_the_header(self, multi_module):
        blob = encode_module_v3(multi_module, placement=GreedyPlacement(64))
        index = container_index(blob)
        for fn in index.functions:
            ranges = index.ranges_for_function(fn.name)
            assert ranges[0][0] == 0
            assert ranges[0][1] >= index.header_bytes

    def test_functions_in_span(self, multi_module):
        blob = encode_module_v3(multi_module, placement=GreedyPlacement(64))
        index = container_index(blob)
        spans = sorted(index.functions, key=lambda f: f.span_start)
        first = spans[0]
        hit = index.functions_in_span(first.span_start, 1)
        assert [f.name for f in hit] == [first.name]
        everything = index.functions_in_span(0, index.span_bytes)
        assert len(everything) == len(index.functions)

    def test_decode_range_bytes_dispatches(self, multi_module, bri3_blob):
        wire_blob = encode_module_v3(multi_module)
        assert decode_range_bytes(wire_blob, 0, 8) == \
            decode_range(wire_blob, 0, 8)
        assert decode_range_bytes(bri3_blob, 0, 8) == \
            brisc_encode.decode_range(bri3_blob, 0, 8)


# ---------------------------------------------------------------------------
# corruption isolation
# ---------------------------------------------------------------------------


class TestIsolation:
    @pytest.mark.parametrize("fmt", ("wire", "brisc"))
    def test_corrupt_chunk_is_contained(self, fmt, multi_module, bri3_blob):
        if fmt == "wire":
            blob = encode_module_v3(multi_module,
                                    placement=GreedyPlacement(64))
        else:
            blob = bri3_blob
        index = container_index(blob)
        assert len(index.chunks) >= 2, "need multiple chunks to isolate"
        victim = index.chunks[0]
        bad = corrupt_chunk(blob, victim.index, Random(5))
        for fn in index.functions:
            if fn.chunk == victim.index:
                with pytest.raises(DecodeError):
                    decode_range_bytes(bad, fn.span_start, fn.span_length)
            else:
                assert decode_range_bytes(bad, fn.span_start,
                                          fn.span_length) == \
                    decode_range_bytes(blob, fn.span_start, fn.span_length)

    @pytest.mark.parametrize("fmt", ("wire", "brisc"))
    def test_fuzz_harness_reports_clean(self, fmt, multi_module, bri3_blob):
        if fmt == "wire":
            blob = encode_module_v3(multi_module,
                                    placement=GreedyPlacement(64))
        else:
            blob = bri3_blob
        report = fuzz_chunked_container(blob, target=f"{fmt}3", seed=2)
        assert report.ok, [f.detail for f in report.failures]
        assert report.counts.get("detected", 0) > 0

    def test_header_corruption_is_typed(self, multi_module):
        blob = bytearray(encode_module_v3(multi_module))
        blob[6] ^= 0xFF  # inside the header CRC's coverage
        with pytest.raises(DecodeError):
            decode_function(bytes(blob), "a")
