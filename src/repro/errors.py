"""Typed decode-error taxonomy and decoder resource limits.

The paper's representations exist to be *shipped*: wire blobs stream over
28.8k modems, BRISC images demand-page from disk and JIT on arrival.  A
receiver therefore decodes bytes it does not control, and every decoder in
this reproduction reports malformed input through one typed hierarchy
rooted at :class:`DecodeError` instead of leaking ``struct.error``,
``IndexError`` or a silent wrong answer.

Compatibility: the concrete classes double-inherit from the built-in
exception a pre-taxonomy caller would have seen (``ValueError`` for
malformed content, ``EOFError`` for exhausted buffers), the same trick the
stdlib uses for ``json.JSONDecodeError(ValueError)`` — existing
``except ValueError`` / ``except EOFError`` call sites keep working while
new code catches :class:`DecodeError` alone.

:class:`ResourceLimits` bounds what a decoder will allocate on behalf of a
blob (stream counts, symbol counts, decoded bytes), so a forged length
field raises :class:`ResourceLimitError` instead of ballooning memory.
"""

from __future__ import annotations

import struct
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = [
    "DecodeError",
    "CorruptStreamError",
    "TruncatedStreamError",
    "UnsupportedFormatError",
    "ResourceLimitError",
    "ResourceLimits",
    "DEFAULT_LIMITS",
    "decode_guard",
    "ServiceError",
    "DeadlineExceededError",
    "OverloadedError",
    "CircuitOpenError",
    "CancelledWorkError",
]


class DecodeError(Exception):
    """Root of the decode-side error taxonomy.

    Anything a decoder raises because of the *input bytes* (rather than a
    bug or an environmental failure) is a ``DecodeError``.
    """


class CorruptStreamError(DecodeError, ValueError):
    """The input is structurally invalid: a CRC mismatch, an impossible
    count, an out-of-range index, an invalid Huffman code..."""


class TruncatedStreamError(CorruptStreamError, EOFError):
    """The input ends before the structure it promised (a cut-off
    download); a special case of corruption worth distinguishing because
    streaming callers may retry with more data."""


class UnsupportedFormatError(DecodeError, ValueError):
    """The container is recognizably *not for this decoder*: wrong magic
    or a format version newer than we speak."""


class ResourceLimitError(DecodeError, ValueError):
    """Decoding would exceed the configured resource budget; raised before
    the offending allocation happens."""


@dataclass(frozen=True)
class ResourceLimits:
    """Ceilings a decoder enforces against attacker-controlled counts.

    The defaults are an order of magnitude above anything the benchmark
    corpus produces, so real artifacts never trip them, while a forged
    32-bit count fails fast instead of allocating gigabytes.
    """

    max_streams: int = 4096          # entries in a multi-stream container
    max_symbols: int = 1 << 24       # symbols per entropy-coded stream
    max_alphabet: int = 1 << 20      # Huffman code-length table entries
    max_decoded_bytes: int = 1 << 28 # total bytes a container may expand to
    max_name_bytes: int = 1 << 16    # any single name/string field
    max_patterns: int = 1 << 20      # dictionary entries in a BRISC image
    max_functions: int = 1 << 18     # functions per module/image

    def __post_init__(self) -> None:
        for name, value in self.__dict__.items():
            if value < 1:
                raise ValueError(f"{name} must be positive")

    def check(self, what: str, value: int, bound: int) -> None:
        """Raise :class:`ResourceLimitError` when ``value`` exceeds ``bound``."""
        if value > bound:
            raise ResourceLimitError(
                f"{what} {value} exceeds the limit of {bound}")


DEFAULT_LIMITS = ResourceLimits()


# ---------------------------------------------------------------------------
# Service-side taxonomy
# ---------------------------------------------------------------------------
#
# The long-lived front end (:mod:`repro.service`) replies to every failed
# request with a structured error naming one of these classes (or one of
# the decode classes above, for corrupt frames and containers).  They
# mirror the decode taxonomy's design: typed, catchable at one root, and
# carrying enough machine-readable state (``retryable``, ``retry_after``)
# for a client to act sensibly without parsing message strings.


class ServiceError(Exception):
    """Root of the service-side error taxonomy.

    ``retryable`` tells a client whether re-sending the same request later
    can succeed; ``retry_after`` (seconds, optional) is the server's hint
    for how long to wait first.
    """

    retryable: bool = False
    retry_after: "float | None" = None


class DeadlineExceededError(ServiceError):
    """The request's deadline elapsed before the pipeline finished; the
    in-flight work was cancelled.  Not retryable as-is — the same request
    with the same deadline will most likely time out again."""


class OverloadedError(ServiceError):
    """Load shedding: the admission queue was full, so the request was
    rejected *before* consuming pipeline resources.  Always retryable."""

    retryable = True

    def __init__(self, message: str, retry_after: float = 0.05) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class CircuitOpenError(ServiceError):
    """The per-unit circuit breaker is open after repeated failures;
    the request was rejected without running.  Retryable once the breaker
    half-opens (``retry_after`` seconds)."""

    retryable = True

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class CancelledWorkError(ServiceError):
    """Cooperative cancellation fired between pipeline stages — the
    request's deadline passed or the server began draining while the
    unit was still compiling.  Retryable: finished stages stay cached,
    so a retry resumes where the cancelled attempt stopped."""

    retryable = True

# Exceptions a decode boundary converts into the typed taxonomy.  TypeError
# and arithmetic errors are included deliberately: a malformed blob can
# steer well-typed reader code into any of these, and the contract is that
# *no* untyped exception escapes a decoder.
_UNTYPED = (
    ValueError, KeyError, IndexError, TypeError, OverflowError,
    ZeroDivisionError, UnicodeDecodeError, struct.error,
)


@contextmanager
def decode_guard(what: str = "container"):
    """Convert stray exceptions at a decode boundary into typed errors.

    Targeted bounds checks inside the readers produce the precise error;
    this guard is the backstop that upholds the "only ``DecodeError``
    escapes a decoder" contract even for paths those checks miss.
    ``DecodeError`` passes through untouched.
    """
    try:
        yield
    except DecodeError:
        raise
    except EOFError as exc:
        raise TruncatedStreamError(f"truncated {what}: {exc}") from exc
    except _UNTYPED as exc:
        raise CorruptStreamError(
            f"corrupt {what}: {type(exc).__name__}: {exc}") from exc
