"""Shared benchmark configuration.

Heavy artifacts (suite compilation, BRISC dictionaries) come from the
shared pipeline toolchain (:func:`repro.pipeline.default_toolchain`),
whose content-addressed cache means benchmark functions only re-run the
cheap kernel under measurement.  Every table printed here is also written
to ``benchmarks/results/`` for EXPERIMENTS.md, along with the pipeline's
per-stage run/hit accounting for the whole session.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def toolchain():
    """The shared pipeline toolchain benchmarks compile through."""
    from repro.pipeline import default_toolchain

    return default_toolchain()


#: Rows appended by builder benchmarks: (unit, variant, seconds, passes,
#: dictionary size).  Rendered into pipeline_stats.txt at session end so
#: the dictionary-builder wall clock is recorded alongside stage stats.
_BUILDER_TIMINGS = []


@pytest.fixture(scope="session")
def builder_timings():
    """Collector for per-variant dictionary-builder wall-clock rows."""
    return _BUILDER_TIMINGS


@pytest.fixture(scope="session", autouse=True)
def pipeline_stats_report(results_dir):
    """Write the session's per-stage pipeline stats next to the tables."""
    yield
    from repro.bench.tables import render_table, toolchain_stats_table
    from repro.pipeline import default_toolchain

    text = toolchain_stats_table(default_toolchain().stats())
    if _BUILDER_TIMINGS:
        text += "\n\n" + render_table(
            ["builder timing", "variant", "seconds", "passes", "dict"],
            [[unit, variant, f"{seconds:8.2f}", str(passes), str(size)]
             for unit, variant, seconds, passes, size in _BUILDER_TIMINGS],
        )
    save_table(results_dir, "pipeline_stats", text)


def save_table(results_dir, name: str, text: str) -> None:
    """Persist a rendered table and echo it to the terminal."""
    (results_dir / f"{name}.txt").write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}")
