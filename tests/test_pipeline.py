"""Pipeline tests: staging, caching, batch compilation, equivalence.

Covers the acceptance criteria of the pipeline refactor:

* cache hit/miss behaviour, verified by stage-invocation counts;
* compiling the corpus suite twice shows zero recompiles the second time;
* the on-disk cache round-trips across toolchain instances;
* ``compile_many`` isolates a ``CompileError`` unit without aborting the
  batch, and parallel workers produce byte-identical wire and BRISC
  artifacts to the serial path;
* pipeline outputs equal the old direct-call path on the corpus suite.

BRISC-stage assertions use small units (the greedy builder is minutes on
the large corpus members); the large members exercise every cheaper stage.
"""

import pytest

from repro.cfront import CompileError, compile_to_ast
from repro.codegen import generate_program
from repro.corpus import suite_names, suite_source
from repro.ir import dump_module, lower_unit
from repro.pipeline import (
    MemoryCache, STAGE_NAMES, Toolchain, resolve_stages,
    vm_code_bytes,
)
from repro.wire import encode_module

SMALL = """
int sq(int x) { return x * x; }
int main(void) { print_int(sq(7)); putchar('\\n'); return 0; }
"""

OTHER = """
int cube(int x) { return x * x * x; }
int main(void) { print_int(cube(3)); return 0; }
"""

BAD = "int main(void) { return undeclared; }"

CHEAP_STAGES = ("codegen", "wire", "deflate")


def total_runs(toolchain):
    return sum(s["runs"] for s in toolchain.stats()["stages"].values())


# ---------------------------------------------------------------------------
# caching
# ---------------------------------------------------------------------------


def test_cache_hit_then_miss_counts():
    tc = Toolchain()
    first = tc.compile(SMALL, name="u")
    assert not any(a.from_cache for a in first.artifacts.values())
    second = tc.compile(SMALL, name="u")
    assert all(a.from_cache for a in second.artifacts.values())
    stages = tc.stats()["stages"]
    assert all(s["runs"] == 1 for s in stages.values())
    assert all(s["cache_hits"] == 1 for s in stages.values())
    # Different source -> misses again.
    tc.compile(OTHER, name="u")
    assert all(s["runs"] == 2 for s in tc.stats()["stages"].values())


def test_corpus_suite_twice_zero_recompiles():
    """Acceptance: recompiling the whole corpus is pure cache hits."""
    tc = Toolchain()
    for name in suite_names():
        tc.compile(suite_source(name), name=name, stages=CHEAP_STAGES)
    runs_after_first = total_runs(tc)
    assert runs_after_first > 0
    for name in suite_names():
        res = tc.compile(suite_source(name), name=name, stages=CHEAP_STAGES)
        assert all(a.from_cache for a in res.artifacts.values())
    assert total_runs(tc) == runs_after_first  # zero recompiles


def test_config_changes_invalidate_downstream_only():
    tc = Toolchain()
    tc.compile(SMALL, name="u", stages=("brisc",))
    base_runs = {n: s["runs"] for n, s in tc.stats()["stages"].items()}
    config = tc.config.with_brisc(k=5)
    tc.compile(SMALL, name="u", stages=("brisc",), config=config)
    stages = tc.stats()["stages"]
    # parse/lower/codegen keys are unchanged -> served from cache...
    for name in ("parse", "lower", "codegen"):
        assert stages[name]["runs"] == base_runs[name]
    # ...but the brisc stage re-ran under the new knobs.
    assert stages["brisc"]["runs"] == base_runs["brisc"] + 1


def test_brisc_workers_do_not_churn_the_cache_key():
    """The builder's output is byte-identical for any worker count, so
    ``brisc_workers`` must stay out of the stage's cache key: switching
    worker counts on the same unit serves the brisc artifact from cache."""
    tc = Toolchain()
    tc.compile(SMALL, name="u", stages=("brisc",))
    base_runs = tc.stats()["stages"]["brisc"]["runs"]
    config = tc.config.with_brisc(workers=2)
    assert config.brisc_workers == 2
    res = tc.compile(SMALL, name="u", stages=("brisc",), config=config)
    assert res.artifact("brisc").from_cache
    assert tc.stats()["stages"]["brisc"]["runs"] == base_runs


def test_wire_codec_knob_changes_key_and_roundtrips():
    """``wire_codec="arith"`` is the ratio-over-speed knob: it re-keys
    (and re-runs) the wire stage, and the coded blob decodes back to the
    same module because the codec flag rides with each stream."""
    from repro.wire import decode_module

    source = suite_source("wc")  # large enough for both codecs to engage
    tc = Toolchain()
    base = tc.compile(source, name="wc", stages=("wire",))
    config = tc.config.with_wire_codec("arith")
    coded = tc.compile(source, name="wc", stages=("wire",), config=config)
    assert not coded.artifact("wire").from_cache
    assert coded.wire_blob != base.wire_blob
    assert dump_module(decode_module(coded.wire_blob)) == \
        dump_module(decode_module(base.wire_blob))
    # The default codec spells its fragment the same as before the knob
    # existed, so pre-existing deflate keys (and caches) are untouched.
    again = tc.compile(source, name="wc", stages=("wire",))
    assert again.artifact("wire").from_cache


def test_with_brisc_keeps_unrelated_knobs():
    tc = Toolchain()
    config = tc.config.with_brisc(k=7).with_brisc(workers=3)
    assert config.brisc_k == 7 and config.brisc_workers == 3
    # Omitting workers leaves the current value in place.
    assert config.with_brisc(k=9).brisc_workers == 3


def test_brisc_meta_records_builder_pass_stats():
    tc = Toolchain()
    res = tc.compile(SMALL, name="u", stages=("brisc",))
    meta = res.artifact("brisc").meta
    assert meta["builder_workers"] == 1
    assert meta["builder_seconds"] >= 0
    passes = meta["builder_passes"]
    assert len(passes) == res.brisc.build.passes
    assert all(set(p) == {"candidates", "admitted", "seconds"}
               for p in passes)


def test_toolchain_aggregates_builder_stats():
    tc = Toolchain()
    tc.compile(SMALL, name="u", stages=("brisc",))
    builder = tc.stats()["brisc_builder"]
    assert builder["builds"] == 1
    assert builder["passes"] >= 1
    # A cache hit must not double-count the build.
    tc.compile(SMALL, name="u", stages=("brisc",))
    assert tc.stats()["brisc_builder"]["builds"] == 1


def test_unit_name_is_part_of_the_key():
    tc = Toolchain()
    tc.compile(SMALL, name="a", stages=("lower",))
    res = tc.compile(SMALL, name="b", stages=("lower",))
    assert not any(a.from_cache for a in res.artifacts.values())
    assert res.module.name == "b"


def test_memory_cache_lru_eviction():
    cache = MemoryCache(capacity=2)
    tc = Toolchain(cache=cache)
    tc.compile(SMALL, name="u", stages=("lower",))  # parse + lower cached
    tc.compile(OTHER, name="v", stages=("parse",))  # evicts u's parse
    res = tc.compile(SMALL, name="u", stages=("lower",))
    assert not res.artifact("parse").from_cache


def test_disk_cache_roundtrip(tmp_path):
    tc = Toolchain(cache_dir=tmp_path)
    tc.compile(SMALL, name="u")
    fresh = Toolchain(cache_dir=tmp_path)
    res = fresh.compile(SMALL, name="u")
    assert all(a.from_cache for a in res.artifacts.values())
    assert total_runs(fresh) == 0
    # The artifacts decode to working payloads, not just equal metadata.
    assert vm_code_bytes(res.program)
    assert res.wire_blob[:4] == b"WIR2"


@pytest.mark.parametrize("garbage", [b"not a pickle", b"garbage\n", b""])
def test_disk_cache_survives_corrupt_entries(tmp_path, garbage):
    tc = Toolchain(cache_dir=tmp_path)
    tc.compile(SMALL, name="u")
    for pkl in tmp_path.rglob("*.pkl"):
        pkl.write_bytes(garbage)
    fresh = Toolchain(cache_dir=tmp_path)
    res = fresh.compile(SMALL, name="u")  # recompiles, no crash
    assert not any(a.from_cache for a in res.artifacts.values())


# ---------------------------------------------------------------------------
# stage selection
# ---------------------------------------------------------------------------


def test_resolve_stages_pulls_upstreams():
    assert [s.name for s in resolve_stages(("wire",))] == \
        ["parse", "lower", "wire"]
    assert [s.name for s in resolve_stages(("brisc",))] == \
        ["parse", "lower", "codegen", "brisc"]
    assert [s.name for s in resolve_stages(None)] == list(STAGE_NAMES)
    with pytest.raises(KeyError):
        resolve_stages(("nonesuch",))


def test_partial_compile_has_only_requested_closure():
    res = Toolchain().compile(SMALL, name="u", stages=("codegen",))
    assert set(res.artifacts) == {"parse", "lower", "codegen"}
    with pytest.raises(KeyError):
        res.artifact("brisc")


# ---------------------------------------------------------------------------
# batch compilation
# ---------------------------------------------------------------------------


def test_batch_serial_error_isolation():
    tc = Toolchain()
    items = tc.compile_many(
        [("a", SMALL), ("bad", BAD), ("b", OTHER)], stages=CHEAP_STAGES)
    assert [it.unit for it in items] == ["a", "bad", "b"]
    assert items[0].ok and items[2].ok
    assert not items[1].ok
    assert items[1].error_type == "CompileError"
    assert "undeclared" in items[1].error


def test_batch_parallel_error_isolation_and_order():
    tc = Toolchain()
    items = tc.compile_many(
        [("a", SMALL), ("bad", BAD), ("b", OTHER)], workers=2)
    assert [it.index for it in items] == [0, 1, 2]
    assert items[0].ok and items[2].ok and not items[1].ok
    assert items[1].error_type == "CompileError"


def test_batch_parallel_matches_serial_bytes():
    """Acceptance: workers>1 yields byte-identical wire and BRISC output."""
    units = [("wc", suite_source("wc")), ("small", SMALL), ("other", OTHER)]
    serial = Toolchain().compile_many(units)
    parallel = Toolchain().compile_many(units, workers=2)
    for s, p in zip(serial, parallel):
        assert s.unit == p.unit
        assert s.result.wire_blob == p.result.wire_blob
        assert s.result.brisc.image.blob == p.result.brisc.image.blob
        assert vm_code_bytes(s.result.program) == \
            vm_code_bytes(p.result.program)


def test_batch_parallel_corpus_cheap_stages_match_serial():
    """The large corpus members agree serial-vs-parallel on wire/deflate."""
    units = [(n, suite_source(n)) for n in suite_names()]
    serial = Toolchain().compile_many(units, stages=CHEAP_STAGES)
    parallel = Toolchain().compile_many(units, workers=2,
                                        stages=CHEAP_STAGES)
    for s, p in zip(serial, parallel):
        assert s.result.wire_blob == p.result.wire_blob
        assert s.result.deflated == p.result.deflated


def test_batch_results_populate_parent_cache():
    tc = Toolchain()
    tc.compile_many([("a", SMALL)], workers=2, stages=CHEAP_STAGES)
    res = tc.compile(SMALL, name="a", stages=CHEAP_STAGES)
    assert all(a.from_cache for a in res.artifacts.values())


# ---------------------------------------------------------------------------
# equivalence with the old direct-call path
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", ["wc", "lcc", "gcc"])
def test_pipeline_matches_direct_path_on_corpus(name):
    source = suite_source(name)
    module = lower_unit(compile_to_ast(source, name), name)
    program = generate_program(module)
    res = Toolchain().compile(source, name=name, stages=CHEAP_STAGES)
    assert dump_module(res.module) == dump_module(module)
    assert vm_code_bytes(res.program) == vm_code_bytes(program)
    assert res.wire_blob == encode_module(module)


def test_pipeline_brisc_matches_direct_path():
    from repro.brisc import compress

    source = suite_source("wc")
    program = generate_program(lower_unit(compile_to_ast(source, "wc"), "wc"))
    direct = compress(program)
    res = Toolchain().compile(source, name="wc", stages=("brisc",))
    assert res.brisc.image.blob == direct.image.blob
    assert res.brisc.image.pattern_count == direct.image.pattern_count


# ---------------------------------------------------------------------------
# artifacts and stats
# ---------------------------------------------------------------------------


def test_artifact_metadata_and_sizes():
    res = Toolchain().compile(SMALL, name="u")
    sizes = res.sizes()
    assert sizes["vm"] > 0 and sizes["wire"] > 0 and sizes["brisc"] > 0
    wire = res.artifact("wire")
    assert wire.meta["code_size"] <= wire.size
    assert res.artifact("deflate").meta["raw_bytes"] == \
        len(res.vm_code_bytes)
    rows = res.stage_rows()
    assert [r["stage"] for r in rows] == list(STAGE_NAMES)
    assert all(r["seconds"] >= 0 for r in rows)


def test_vm_code_bytes_is_the_pipeline_artifact():
    """The old buried-import helper is now the pipeline's (re-exported)."""
    from repro.bench import measure

    assert measure.vm_code_bytes is vm_code_bytes


def test_compile_error_propagates_from_compile():
    with pytest.raises(CompileError):
        Toolchain().compile(BAD, name="bad")


def test_stats_dict_shape():
    tc = Toolchain()
    tc.compile(SMALL, name="u", stages=("codegen",))
    stats = tc.stats()
    assert set(stats) == {"stages", "cache", "brisc_builder", "totals"}
    assert set(stats["stages"]) == set(STAGE_NAMES)
    assert stats["cache"]["misses"] >= 3
    assert set(stats["totals"]) == {
        "runs", "cache_hits", "replays", "seconds", "hit_rate"}
    assert stats["totals"]["runs"] >= 3
    assert stats["totals"]["replays"] == 0
    # No BRISC stage ran, so the builder section is all zeros.
    assert stats["brisc_builder"] == {
        "builds": 0, "passes": 0, "candidates": 0, "admitted": 0,
        "seconds": 0.0,
    }
    tc.reset_stats()
    assert total_runs(tc) == 0


# ---------------------------------------------------------------------------
# batch resilience: timeouts, worker death, degradation
# ---------------------------------------------------------------------------

from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool

from repro.pipeline import toolchain as toolchain_mod


class _FakeFuture:
    def __init__(self, behaviour):
        self._behaviour = behaviour

    def result(self, timeout=None):
        if isinstance(self._behaviour, Exception):
            raise self._behaviour
        return self._behaviour


def _install_fake_pool(monkeypatch, scripts):
    """Replace the process pool with scripted per-future behaviours.

    ``scripts`` is one list per pool generation; each entry is either an
    outcome tuple (returned from ``Future.result``) or an exception
    instance (raised from it).
    """
    pools = []

    class FakePool:
        def __init__(self, max_workers=None):
            if not scripts:
                raise AssertionError("unexpected extra pool generation")
            self._script = list(scripts.pop(0))
            self._submitted = 0
            self.shutdowns = []
            pools.append(self)

        def submit(self, fn, *args):
            behaviour = self._script[self._submitted]
            self._submitted += 1
            return _FakeFuture(behaviour)

        def shutdown(self, wait=True, cancel_futures=False):
            self.shutdowns.append((wait, cancel_futures))

    monkeypatch.setattr(toolchain_mod, "ProcessPoolExecutor", FakePool)
    return pools


def _error_outcome(msg="boom"):
    return ("error", "CompileError", msg, 0.01)


def test_batch_timeout_isolates_unit_and_retries_rest(monkeypatch):
    pools = _install_fake_pool(monkeypatch, [
        [FutureTimeout(), _error_outcome("never read")],
        [_error_outcome("b compiled in pool 2")],
    ])
    tc = Toolchain()
    items = tc.compile_many([("a", SMALL), ("b", OTHER)], workers=2,
                            timeout=0.5)
    assert [it.unit for it in items] == ["a", "b"]
    assert items[0].error_type == "Timeout"
    assert "0.5" in items[0].error
    assert items[1].error == "b compiled in pool 2"
    assert len(pools) == 2  # the overdue pool was abandoned, a fresh one ran


def test_batch_survives_one_pool_death(monkeypatch):
    pools = _install_fake_pool(monkeypatch, [
        [BrokenProcessPool("worker killed"), _error_outcome()],
        [_error_outcome("a retried"), _error_outcome("b retried")],
    ])
    tc = Toolchain()
    items = tc.compile_many([("a", SMALL), ("b", OTHER)], workers=2)
    assert [it.error for it in items] == ["a retried", "b retried"]
    assert len(pools) == 2


def test_batch_degrades_to_serial_after_repeated_pool_death(monkeypatch):
    pools = _install_fake_pool(monkeypatch, [
        [BrokenProcessPool("gone"), BrokenProcessPool("gone")],
        [BrokenProcessPool("gone again"), BrokenProcessPool("gone again")],
    ])
    tc = Toolchain()
    items = tc.compile_many([("a", SMALL), ("b", OTHER)], workers=2,
                            stages=CHEAP_STAGES)
    # The serial path produced *real* results despite two dead pools.
    assert len(pools) == 2
    assert all(it.ok for it in items)
    assert items[0].result.wire_blob[:4] == b"WIR2"


def test_batch_falls_back_when_pool_cannot_start(monkeypatch):
    class NoPool:
        def __init__(self, max_workers=None):
            raise OSError("no semaphores in this sandbox")

    monkeypatch.setattr(toolchain_mod, "ProcessPoolExecutor", NoPool)
    tc = Toolchain()
    items = tc.compile_many([("a", SMALL)], workers=4, stages=("lower",))
    assert items[0].ok


# ---------------------------------------------------------------------------
# disk cache: corrupt entries are misses, not crashes
# ---------------------------------------------------------------------------

import pickle

from repro.errors import CorruptStreamError
from repro.pipeline.cache import DiskCache


def _raise_corrupt():
    raise CorruptStreamError("cached container failed its CRC")


class _DecodeBomb:
    """Pickles fine; raises a typed DecodeError while materializing."""

    def __reduce__(self):
        return (_raise_corrupt, ())


def test_disk_cache_decode_error_is_miss_and_removed(tmp_path):
    cache = DiskCache(tmp_path)
    tc = Toolchain(cache=cache)
    tc.compile(SMALL, name="u", stages=("parse",))
    pkls = list(tmp_path.rglob("*.pkl"))
    assert pkls
    for pkl in pkls:
        pkl.write_bytes(pickle.dumps(_DecodeBomb()))
    fresh = Toolchain(cache=DiskCache(tmp_path))
    res = fresh.compile(SMALL, name="u", stages=("parse",))  # no crash
    assert not res.artifact("parse").from_cache


def test_disk_cache_drops_decode_error_entry_file(tmp_path):
    from repro.pipeline.artifacts import Artifact

    cache = DiskCache(tmp_path)
    art = Artifact(stage="parse", unit="u", key="k" * 64, payload=b"x",
                   size=1, seconds=0.0, meta={})
    cache.put(art.key, art)
    path = cache._path(art.key)
    path.write_bytes(pickle.dumps(_DecodeBomb()))
    assert cache.get(art.key) is None
    assert not path.exists()  # poisoned entry removed for good
    assert cache.misses == 1


def test_disk_cache_rejects_non_artifact_pickles(tmp_path):
    cache = DiskCache(tmp_path)
    key = "a" * 64
    path = cache._path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(pickle.dumps({"not": "an artifact"}))
    assert cache.get(key) is None
    assert not path.exists()


# ---------------------------------------------------------------------------
# tiered-cache degraded paths, disk bounds, thread safety
# ---------------------------------------------------------------------------

import os
import threading

from repro.pipeline import TieredCache


def _tiered(tmp_path, capacity=64):
    return TieredCache(MemoryCache(capacity), DiskCache(tmp_path))


def test_tiered_corrupt_disk_entry_is_miss_removed_and_recompiled(tmp_path):
    tc = Toolchain(cache=_tiered(tmp_path))
    tc.compile(SMALL, name="u", stages=("parse",))
    pkls = list(tmp_path.rglob("*.pkl"))
    assert pkls
    for pkl in pkls:
        pkl.write_bytes(b"\x00garbage, not a pickle at all")
    # Fresh memory tier: every lookup falls through to the corrupt disk.
    fresh = Toolchain(cache=_tiered(tmp_path))
    res = fresh.compile(SMALL, name="u", stages=("parse",))
    assert not res.artifact("parse").from_cache  # recompiled, no crash
    # The poisoned entries were dropped and replaced with good ones...
    third = Toolchain(cache=_tiered(tmp_path))
    res = third.compile(SMALL, name="u", stages=("parse",))
    assert res.artifact("parse").from_cache  # ...so the next reader hits


def test_put_into_unwritable_cache_dir_never_fails_a_compile(tmp_path):
    # A regular *file* where the cache root should be: every mkdir/write
    # under it fails with OSError, which DiskCache.put must swallow.
    blocked = tmp_path / "blocked"
    blocked.write_text("not a directory")
    cache = _tiered(tmp_path / "blocked")
    tc = Toolchain(cache=cache)
    res = tc.compile(SMALL, name="u", stages=("parse",))  # must not raise
    assert res.artifact("parse").payload is not None
    # Disk writes went nowhere; lookups are misses, not errors.
    assert cache.disk.get(res.artifact("parse").key) is None
    assert cache.disk.usage() == {"entries": 0, "bytes": 0}


def test_disk_cache_prune_evicts_oldest_mtime_first(tmp_path):
    from repro.pipeline.artifacts import Artifact

    cache = DiskCache(tmp_path)
    keys = [f"{i:02x}" + "a" * 62 for i in range(4)]
    for i, key in enumerate(keys):
        cache.put(key, Artifact(stage="parse", unit=f"u{i}", key=key,
                                payload=b"x" * 100, size=100))
        os.utime(cache._path(key), (1000 + i, 1000 + i))
    total = cache.usage()["bytes"]
    per_entry = total // 4
    # Keep room for roughly two entries: the two oldest must go.
    result = cache.prune(per_entry * 2 + 1)
    assert result["removed_entries"] == 2
    assert cache.get(keys[0]) is None and cache.get(keys[1]) is None
    assert cache.get(keys[2]) is not None and cache.get(keys[3]) is not None
    assert cache.usage()["entries"] == 2


def test_disk_cache_prune_to_zero_and_validation(tmp_path):
    from repro.pipeline.artifacts import Artifact

    cache = DiskCache(tmp_path)
    cache.put("b" * 64, Artifact(stage="parse", unit="u", key="b" * 64,
                                 payload=b"x", size=1))
    with pytest.raises(ValueError):
        cache.prune(-1)
    result = cache.prune(0)
    assert result["removed_entries"] == 1 and result["kept_entries"] == 0
    assert cache.usage() == {"entries": 0, "bytes": 0}
    assert cache.prune(0)["removed_entries"] == 0  # idempotent


def test_memory_cache_is_thread_safe_under_contention():
    from repro.pipeline.artifacts import Artifact

    cache = MemoryCache(capacity=16)
    gets_per_thread = 300
    threads = 8
    errors = []

    def hammer(tid):
        try:
            for i in range(gets_per_thread):
                key = f"k{(tid * 7 + i) % 40}"
                if cache.get(key) is None:
                    cache.put(key, Artifact(stage="parse", unit=key,
                                            key=key, payload=i))
        except Exception as exc:  # pragma: no cover - the assertion
            errors.append(exc)

    workers = [threading.Thread(target=hammer, args=(t,))
               for t in range(threads)]
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    assert not errors
    assert len(cache) <= 16  # LRU bound held under contention
    stats = cache.stats()
    assert stats["hits"] + stats["misses"] == threads * gets_per_thread


def test_toolchain_shared_across_threads_compiles_consistently():
    tc = Toolchain()
    results = {}
    errors = []

    def compile_unit(tag, source):
        try:
            res = tc.compile(source, name=tag, stages=("codegen",))
            results[tag] = vm_code_bytes(res.program)
        except Exception as exc:  # pragma: no cover - the assertion
            errors.append(exc)

    workers = []
    for round_no in range(3):
        for tag, source in (("small", SMALL), ("other", OTHER)):
            workers.append(threading.Thread(
                target=compile_unit, args=(f"{tag}", source)))
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    assert not errors
    # Same artifacts as a serial compile, and the stats ledger is sane.
    serial = Toolchain()
    for tag, source in (("small", SMALL), ("other", OTHER)):
        expect = vm_code_bytes(
            serial.compile(source, name=tag, stages=("codegen",)).program)
        assert results[tag] == expect
    stats = tc.stats()["stages"]
    for stage in ("parse", "lower", "codegen"):
        assert stats[stage]["runs"] + stats[stage]["cache_hits"] == 6


def test_compile_cancel_hook_raises_typed_error():
    from repro.errors import CancelledWorkError

    tc = Toolchain()
    with pytest.raises(CancelledWorkError):
        tc.compile(SMALL, name="u", cancel=lambda: True)
    # A cancel that never fires changes nothing.
    res = tc.compile(SMALL, name="u", stages=("parse",),
                     cancel=lambda: False)
    assert res.artifact("parse").payload is not None


def test_compile_cancel_mid_pipeline_keeps_finished_stages(tmp_path):
    tc = Toolchain()
    fired = {"calls": 0}

    def cancel_after_two():
        fired["calls"] += 1
        return fired["calls"] > 2  # parse and lower run, codegen does not

    from repro.errors import CancelledWorkError

    with pytest.raises(CancelledWorkError):
        tc.compile(SMALL, name="u", stages=("codegen",),
                   cancel=cancel_after_two)
    # The finished prefix stayed cached: the retry hits it.
    res = tc.compile(SMALL, name="u", stages=("codegen",))
    assert res.artifact("parse").from_cache
    assert res.artifact("lower").from_cache
    assert not res.artifact("codegen").from_cache
