"""Greedy BRISC dictionary construction.

The paper's algorithm:

1. start from the base instruction set;
2. scan the program, generating candidate patterns by *operand
   specialization* (one field at a time) and *opcode combination* (each
   adjacent pair, crossed with the zero-or-one-field specializations of
   both sides);
3. estimate each candidate's benefit ``B = P − W`` and keep a heap;
4. after each pass, admit the best ``K`` candidates (default 20, the
   paper's table uses K=20), rewrite the program — combinations first,
   then any instruction that a new pattern represents more compactly;
5. stop after a pass yielding fewer than ``K`` candidates with positive B.

The candidate scan (step 2) is embarrassingly parallel across functions:
each function contributes an independent per-candidate savings total, and
totals merge by addition.  ``workers > 1`` shards the scan over a process
pool; the merged savings map is identical to the serial one, and every
downstream decision (benefit heap, tie-breaking, admission order) runs in
the parent on the merged map, so the admitted dictionary is byte-identical
to the serial builder's.

Two further accelerations keep the output byte-identical:

* **Incremental rescanning** (``prune=True``, the default): the builder
  keeps each function's candidate→savings contribution from the previous
  pass and, because savings merge by addition, only re-scans functions
  whose slots the rewrite step actually changed — subtracting the stale
  contribution and adding the fresh one reproduces exactly the map a full
  rescan would build.  Candidates whose running savings total fell to (or
  below) their admission floor ``dictionary_size() + W`` are dropped from
  the live heap-candidate set on the spot instead of being re-scored
  every round; the floor is constant per pattern, so liveness is an exact
  predicate, not a heuristic bound.

* **Warm starting** (``warm_start=...``): a corpus-level shared
  dictionary (see :mod:`repro.brisc.shared`) is priced against the unit
  and its locally profitable subset admitted and applied before the
  first pass, so per-unit passes only score deltas against the
  cross-unit patterns.  Corpus patterns whose local savings do not clear
  the ordinary admission floor are skipped — a unit never pays
  dictionary bytes its own code cannot earn back — and warm patterns a
  unit never uses cost nothing in its image anyway, because the encoder
  emits only patterns its slots reference.

The returned :class:`BuildResult` carries the final slot program, the
dictionary in admission order, per-pass statistics, and the counters the
paper reports (candidates tested, dictionary size).
"""

from __future__ import annotations

import heapq
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..vm.instr import Instr, VMProgram
from .cost import CostModel
from .pattern import DictPattern
from .slots import Slot, SlotFunction, SlotProgram, build_slots

__all__ = ["BuildResult", "BriscBuilder", "PassStats", "build_dictionary",
           "prepare_rewrite", "rewrite_function"]

_MAX_PARTS = 4

#: Failures that mean "this host cannot run a process pool at all"
#: (sandboxes without semaphores, missing _multiprocessing, ...).
_POOL_UNAVAILABLE = (OSError, PermissionError, ImportError)

#: Cache type for memoized augmented sets: (pattern, insns) -> patterns.
_AugCache = Dict[Tuple[DictPattern, Tuple[Instr, ...]], List[DictPattern]]

#: One shard of the scan: (function index, function) pairs.
_Shard = List[Tuple[int, SlotFunction]]


class _ScanTables:
    """Memoized candidate tables driving the scan.

    ``aug`` holds each (pattern, insns) key's augmented specialization
    set; ``spec`` and ``pair`` hold precomputed ``(candidate id, bytes
    saved per occurrence)`` rows for the specialization and combination
    scans.  A slot's candidates and their per-occurrence savings depend
    only on its (pattern, insns) — and, for pairs, the neighbour's — so
    after the first pass a rescan is a table walk: no pattern objects
    are rebuilt, re-hashed, or re-sized.

    Candidates are interned to dense integer ids (``ids``/``patterns``)
    when a row is first built, so every hot map downstream — savings
    totals, live set, floors — is int-keyed; the only Python-level
    pattern hash left per occurrence is the row-key lookup.
    """

    __slots__ = ("aug", "spec", "pair", "ids", "patterns")

    def __init__(self) -> None:
        self.aug: _AugCache = {}
        self.spec: Dict[tuple, List[Tuple[int, int]]] = {}
        self.pair: Dict[tuple, List[Tuple[int, int]]] = {}
        self.ids: Dict[DictPattern, int] = {}
        self.patterns: List[DictPattern] = []

    def intern(self, cand: DictPattern) -> int:
        """The candidate's dense id, assigning one on first sight."""
        cid = self.ids.get(cand)
        if cid is None:
            cid = len(self.patterns)
            self.ids[cand] = cid
            self.patterns.append(cand)
        return cid


@dataclass
class PassStats:
    """One greedy pass: scan size, admissions, and wall time."""

    candidates: int
    admitted: int
    seconds: float


@dataclass
class BuildResult:
    """Output of dictionary construction."""

    slots: SlotProgram
    dictionary: List[DictPattern]
    candidates_tested: int
    passes: int
    base_patterns: int
    pass_stats: List[PassStats] = field(default_factory=list)
    workers: int = 1
    warm_patterns: int = 0
    #: Pass-by-pass replay journal (see :mod:`repro.brisc.journal`),
    #: recorded when the builder ran with ``journal=True``.  It is what
    #: lets a later build of an edited program replay this build's
    #: trajectory instead of re-scoring every candidate.
    journal: Optional[object] = None

    @property
    def dictionary_size(self) -> int:
        return len(self.dictionary)

    @property
    def seconds(self) -> float:
        return sum(p.seconds for p in self.pass_stats)


def _augmented_set(
    slot: Slot, cache: _AugCache
) -> List[DictPattern]:
    """The slot's pattern plus its one-field specializations (the paper's
    "augmented operand-specialized set"), memoized per (pattern, insns).

    Memoization pays because a slot is rescanned on every pass (up to
    ``max_passes`` times) and because many slots share a pattern/insns
    pair after specialization converges.
    """
    key = (slot.pattern, slot.insns)
    cached = cache.get(key)
    if cached is not None:
        return cached
    out = [slot.pattern]
    for pi, (part, instr) in enumerate(zip(slot.pattern.parts, slot.insns)):
        for spec in part.specializations(instr):
            parts = list(slot.pattern.parts)
            parts[pi] = spec
            out.append(DictPattern(tuple(parts)))
    cache[key] = out
    return out


def _spec_row(slot: Slot, tables: _ScanTables) -> List[Tuple[int, int]]:
    """The slot's specialization candidates and their savings, memoized."""
    key = (slot.pattern, slot.insns)
    row = tables.spec.get(key)
    if row is None:
        cur_size = slot.pattern.encoded_size()
        row = []
        for cand in _augmented_set(slot, tables.aug)[1:]:
            saved = cur_size - cand.encoded_size()
            if saved > 0:
                row.append((tables.intern(cand), saved))
        tables.spec[key] = row
    return row


def _pair_row(
    slot: Slot, nxt: Slot, tables: _ScanTables
) -> List[Tuple[int, int]]:
    """The adjacent pair's combination candidates and savings, memoized."""
    key = (slot.pattern, slot.insns, nxt.pattern, nxt.insns)
    row = tables.pair.get(key)
    if row is None:
        pair_size = slot.pattern.encoded_size() + nxt.pattern.encoded_size()
        row = []
        for a in _augmented_set(slot, tables.aug):
            for b in _augmented_set(nxt, tables.aug):
                cand = DictPattern(a.parts + b.parts)
                if not cand.is_control_ok():
                    continue
                saved = pair_size - cand.encoded_size()
                if saved > 0:
                    row.append((tables.intern(cand), saved))
        tables.pair[key] = row
    return row


def _scan_slots(
    slots: List[Slot],
    savings: Dict[int, int],
    tables: _ScanTables,
) -> None:
    """Accumulate one function's raw candidate savings into ``savings``
    (keyed by the tables' candidate ids).

    Raw means pre-filter: every candidate whose occurrence saves bytes is
    summed, including patterns already in the dictionary — the caller
    filters those out.  Keeping the scan filter-free is what lets worker
    processes run it without a copy of the (growing) dictionary set, and
    what makes per-function contributions subtractable for the
    incremental rescan.
    """
    get = savings.get
    for i, slot in enumerate(slots):
        # Operand specialization, one field at a time.
        for cid, saved in _spec_row(slot, tables):
            savings[cid] = get(cid, 0) + saved
        # Opcode combination with the right neighbour.
        if i + 1 >= len(slots):
            continue
        nxt = slots[i + 1]
        if nxt.is_block_start:
            continue
        if len(slot.insns) + len(nxt.insns) > _MAX_PARTS:
            continue
        for cid, saved in _pair_row(slot, nxt, tables):
            savings[cid] = get(cid, 0) + saved


def prepare_rewrite(
    admitted: Sequence[DictPattern],
) -> Tuple[Dict[str, List[DictPattern]], Dict[Tuple[str, ...], List[DictPattern]]]:
    """Index one pass's admitted patterns for rewriting: combinations
    grouped by first opcode, and every pattern grouped by instruction
    shape (for the specialization sweep).  Shared with the journal
    replayer, which rewrites only the edited functions."""
    combos_by_first: Dict[str, List[DictPattern]] = {}
    singles_by_shape: Dict[Tuple[str, ...], List[DictPattern]] = {}
    for p in admitted:
        if len(p.parts) > 1:
            combos_by_first.setdefault(p.parts[0].name, []).append(p)
        shape = tuple(part.name for part in p.parts)
        singles_by_shape.setdefault(shape, []).append(p)
    return combos_by_first, singles_by_shape


def rewrite_function(
    fn: SlotFunction,
    combos_by_first: Dict[str, List[DictPattern]],
    singles_by_shape: Dict[Tuple[str, ...], List[DictPattern]],
) -> bool:
    """Rewrite one function with a pass's admitted patterns (indexed by
    :func:`prepare_rewrite`).  Returns whether its slots changed."""
    changed = False
    # Combination pass: left-to-right, merge windows of slots whose
    # concatenated instructions match a new combined pattern.
    if combos_by_first:
        merged_slots, merged_any = _combine_slots(fn.slots, combos_by_first)
        if merged_any:
            fn.slots = merged_slots
            changed = True
    # Specialization pass: adopt any new pattern that represents a slot
    # more compactly.  Candidates are tried in admission order, so a
    # pass's rewrite outcome depends on the admitted *sequence* — which
    # is why the journal replayer verifies its re-derived admissions
    # against the recorded list, order included.
    for slot in fn.slots:
        shape = tuple(i.name for i in slot.insns)
        best = slot.pattern
        best_size = slot.size
        for cand in singles_by_shape.get(shape, ()):
            if cand.encoded_size() < best_size and cand.matches(slot.insns):
                best = cand
                best_size = cand.encoded_size()
        if best is not slot.pattern:
            slot.pattern = best
            changed = True
    return changed


def _combine_slots(
    slots: List[Slot], by_first: Dict[str, List[DictPattern]]
) -> Tuple[List[Slot], bool]:
    out: List[Slot] = []
    merged_any = False
    i = 0
    while i < len(slots):
        slot = slots[i]
        merged = None
        for cand in by_first.get(slot.insns[0].name, ()):
            nparts = len(cand.parts)
            # Collect a window of whole slots covering nparts insns.
            window = [slot]
            total = len(slot.insns)
            j = i + 1
            ok = True
            while total < nparts:
                if j >= len(slots) or slots[j].is_block_start:
                    ok = False
                    break
                window.append(slots[j])
                total += len(slots[j].insns)
                j += 1
            if not ok or total != nparts:
                continue
            insns = tuple(ins for s in window for ins in s.insns)
            if not cand.matches(insns):
                continue
            old = sum(s.size for s in window)
            if cand.encoded_size() >= old:
                continue
            merged = Slot(
                insns=insns,
                pattern=cand,
                is_block_start=slot.is_block_start,
                labels=slot.labels,
            )
            i = j
            break
        if merged is not None:
            out.append(merged)
            merged_any = True
        else:
            out.append(slot)
            i += 1
    return out, merged_any


#: Per-process scan tables for pool workers.  The pool persists across
#: passes, so a worker's tables warm up on pass 1 and serve every rescan.
_WORKER_TABLES = _ScanTables()


def _scan_worker(shard: _Shard) -> List[Tuple[int, Dict[DictPattern, int]]]:
    """Process-pool entry: per-function raw savings for one shard.

    Worker-local candidate ids mean nothing to the parent, so results
    travel keyed by pattern; the parent re-interns them into its own id
    space.
    """
    out: List[Tuple[int, Dict[DictPattern, int]]] = []
    patterns = _WORKER_TABLES.patterns
    for index, fn in shard:
        savings: Dict[int, int] = {}
        _scan_slots(fn.slots, savings, _WORKER_TABLES)
        out.append((index, {patterns[cid]: v for cid, v in savings.items()}))
    return out


def _shard_functions(pairs: _Shard, shards: int) -> List[_Shard]:
    """Split (index, function) pairs into ``shards`` groups balanced by
    slot count.

    Greedy longest-processing-time assignment; merge order is irrelevant
    (savings totals are summed), so balance is all that matters.
    """
    buckets: List[_Shard] = [[] for _ in range(shards)]
    loads = [0] * shards
    order = sorted(range(len(pairs)),
                   key=lambda i: len(pairs[i][1].slots), reverse=True)
    for i in order:
        target = loads.index(min(loads))
        buckets[target].append(pairs[i])
        loads[target] += len(pairs[i][1].slots)
    return [b for b in buckets if b]


class BriscBuilder:
    """Runs the greedy construction over one program.

    ``workers > 1`` parallelizes the per-pass candidate scan over a
    process pool; results are deterministic and byte-identical to the
    serial builder (``workers=1``, the default).  Hosts without process
    support degrade to the serial scan transparently.

    ``warm_start`` admits the locally profitable subset of a shared
    dictionary's patterns before the first pass;
    ``prune=False`` disables the incremental rescan and re-scores
    every candidate every pass (the pre-optimization behaviour, kept as
    the reference for determinism tests).  ``program`` may be a
    :class:`VMProgram` or an already-built :class:`SlotProgram` (the
    shared-dictionary builder concatenates several units' slots).
    """

    def __init__(
        self,
        program: Union[VMProgram, SlotProgram],
        k: int = 20,
        abundant_memory: bool = False,
        max_passes: int = 40,
        workers: Optional[int] = None,
        warm_start: Optional[Sequence[DictPattern]] = None,
        prune: bool = True,
        journal: bool = False,
    ) -> None:
        if isinstance(program, SlotProgram):
            self.slots = program
        else:
            self.slots = build_slots(program)
        self.k = k
        self.cost = CostModel(abundant_memory)
        self.max_passes = max_passes
        self.workers = max(1, workers or 1)
        self.prune = prune
        self.seen: set = set()
        self.dictionary: List[DictPattern] = []
        self.in_dictionary: set = set()
        self.candidates_tested = 0
        self.passes = 0
        self.pass_stats: List[PassStats] = []
        self._tables = _ScanTables()
        self._pool: Optional[ProcessPoolExecutor] = None
        # Incremental-scan state, keyed by the tables' dense candidate
        # ids: per-function raw contributions, their merged totals, the
        # live (positive-benefit) candidate set, which ids are already
        # dictionary members (and how many of those sit in the merged
        # map), admission floors, and the functions the last rewrite
        # touched.  All maintained so the merged map always equals what
        # a full rescan would produce.
        self._fn_savings: Optional[List[Dict[int, int]]] = None
        self._savings: Dict[int, int] = {}
        self._live: Set[int] = set()
        self._dict_ids: Set[int] = set()
        self._dict_checked: Set[int] = set()
        self._dict_overlap = 0
        self._floors: Dict[int, int] = {}
        self._changed: Set[int] = set()
        # Replay journal: records each pass's savings deltas, live set,
        # and admissions so an edited program can replay this build (see
        # :mod:`repro.brisc.journal`).  Warm-started builds already fold
        # in cross-unit state the journal does not capture, and
        # ``prune=False`` never computes per-function deltas — both
        # simply skip recording.
        self._journal = None
        if journal and prune and not warm_start:
            from .journal import BuildJournal

            self._journal = BuildJournal(
                config_sig=_config_sig(k, abundant_memory, max_passes),
                patterns=self._tables.patterns,
                ids=self._tables.ids,
            )
        self._seed_base_patterns()
        self.base_patterns = len(self.dictionary)
        self.warm_patterns = 0
        if warm_start:
            # Price the corpus patterns against *this* unit before
            # admitting: a shared pattern enters only when its local
            # savings clear the same floor ordinary admission uses, so a
            # unit never pays dictionary bytes for corpus patterns its
            # own code cannot earn back.  The scan that prices them is
            # the one pass 1 needs anyway; the rewrite's changed set is
            # carried into that pass's incremental refresh.
            self._refresh_savings()
            fresh = []
            for pattern in warm_start:
                if pattern in self.in_dictionary:
                    continue
                cid = self._tables.ids.get(pattern)
                if cid is None:
                    continue
                if self._savings.get(cid, 0) > self._floor(cid):
                    self._admit(pattern)
                    fresh.append(pattern)
            self.warm_patterns = len(fresh)
            if fresh:
                self._changed = self._apply_patterns(fresh)

    def _seed_base_patterns(self) -> None:
        journal = self._journal
        intern = self._tables.intern
        for fn in self.slots.functions:
            if journal is not None:
                # Interning here only assigns dense ids early; admission
                # order (and therefore the dictionary) is unchanged.
                journal.base_seed.append(
                    [intern(slot.pattern) for slot in fn.slots])
            for slot in fn.slots:
                self._admit(slot.pattern)

    def _admit(self, pattern: DictPattern) -> None:
        if pattern not in self.in_dictionary:
            self.in_dictionary.add(pattern)
            self.dictionary.append(pattern)
            cid = self._tables.ids.get(pattern)
            if cid is not None:
                self._dict_ids.add(cid)
                if cid in self._savings:
                    self._dict_overlap += 1
                self._live.discard(cid)

    def _is_dict(self, cid: int) -> bool:
        """Whether the candidate id's pattern is a dictionary member.

        Membership is cached per id: a pattern-level set lookup happens
        at most once per id (``_admit`` keeps the cache current when a
        known id's pattern is admitted later).
        """
        if cid in self._dict_ids:
            return True
        if cid in self._dict_checked:
            return False
        self._dict_checked.add(cid)
        if self._tables.patterns[cid] in self.in_dictionary:
            self._dict_ids.add(cid)
            return True
        return False

    # -- candidate generation ----------------------------------------------

    def _augmented_set(self, slot: Slot) -> List[DictPattern]:
        """The slot's augmented operand-specialization set (memoized)."""
        return _augmented_set(slot, self._tables.aug)

    def _floor(self, cid: int) -> int:
        """The admission floor: savings must exceed the pattern's
        dictionary-entry bytes plus its working-set cost for B > 0.
        Constant per pattern, so it is computed once and cached."""
        floor = self._floors.get(cid)
        if floor is None:
            cand = self._tables.patterns[cid]
            floor = cand.dictionary_size() + self.cost.working_set_cost(cand)
            self._floors[cid] = floor
        return floor

    def _adjust(self, cid: int, delta: int) -> None:
        """Apply one candidate's savings delta to the merged map,
        maintaining the live set, the dictionary-overlap count, and the
        paper's candidates-tested counter exactly as a full rescan
        would."""
        savings = self._savings
        current = savings.get(cid)
        if current is None:
            if delta <= 0:
                return
            savings[cid] = delta
            if self._is_dict(cid):
                self._dict_overlap += 1
            else:
                if cid not in self.seen:
                    self.seen.add(cid)
                    self.candidates_tested += 1
                if delta > self._floor(cid):
                    self._live.add(cid)
            return
        value = current + delta
        if value <= 0:
            del savings[cid]
            if self._is_dict(cid):
                self._dict_overlap -= 1
            else:
                self._live.discard(cid)
            return
        savings[cid] = value
        if not self._is_dict(cid):
            if value > self._floor(cid):
                self._live.add(cid)
            else:
                self._live.discard(cid)

    def _scan_functions(
        self, indices: Iterable[int]
    ) -> List[Tuple[int, Dict[int, int]]]:
        """Raw per-function savings (id-keyed) for the given indices."""
        functions = self.slots.functions
        pairs: _Shard = [(i, functions[i]) for i in indices]
        if self.workers > 1 and len(pairs) > 1:
            scanned = self._parallel_scan(pairs)
            if scanned is not None:
                intern = self._tables.intern
                return [(index, {intern(p): v for p, v in fresh.items()})
                        for index, fresh in scanned]
        out: List[Tuple[int, Dict[int, int]]] = []
        for index, fn in pairs:
            savings: Dict[int, int] = {}
            _scan_slots(fn.slots, savings, self._tables)
            out.append((index, savings))
        return out

    def _parallel_scan(
        self, pairs: _Shard
    ) -> Optional[List[Tuple[int, Dict[DictPattern, int]]]]:
        """Sharded scan over the pool; None when the host has no pools.

        Savings merge by addition, which is commutative, so shard order
        cannot change the merged map.
        """
        try:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            shards = _shard_functions(pairs, self.workers)
            futures = [self._pool.submit(_scan_worker, s) for s in shards]
            out: List[Tuple[int, Dict[DictPattern, int]]] = []
            for future in futures:
                out.extend(future.result())
            return out
        except _POOL_UNAVAILABLE + (BrokenProcessPool,):
            self._shutdown_pool()
            self.workers = 1  # degrade for the remaining passes
            return None

    def _refresh_savings(self) -> None:
        """Bring the merged savings map up to date for this pass.

        The first pass (and every pass when ``prune=False``) scans every
        function; later passes re-scan only the functions the previous
        rewrite changed, subtracting each one's stale contribution and
        adding the fresh one.  Both paths produce the same merged map.
        """
        functions = self.slots.functions
        if self._fn_savings is None or not self.prune:
            self._fn_savings = [{} for _ in functions]
            self._savings = {}
            self._live = set()
            self._dict_overlap = 0
            self._apply_rescan(self._scan_functions(range(len(functions))))
        elif self._changed:
            self._apply_rescan(self._scan_functions(sorted(self._changed)))
        self._changed = set()

    def _apply_rescan(
        self, scanned: List[Tuple[int, Dict[int, int]]]
    ) -> None:
        assert self._fn_savings is not None
        journal = self._journal
        record = journal.passes[-1].deltas if journal is not None else None
        for index, fresh in scanned:
            stale = self._fn_savings[index]
            for cid, value in stale.items():
                if cid not in fresh:
                    self._adjust(cid, -value)
            for cid, value in fresh.items():
                delta = value - stale.get(cid, 0)
                if delta:
                    self._adjust(cid, delta)
            if record is not None:
                # Net per-function delta (fresh − stale): replaying these
                # in sequence reproduces the merged savings map exactly,
                # because merging is plain addition.
                net = {cid: -v for cid, v in stale.items()
                       if cid not in fresh}
                for cid, value in fresh.items():
                    delta = value - stale.get(cid, 0)
                    if delta:
                        net[cid] = delta
                record.append((index, net))
            self._fn_savings[index] = fresh

    # -- rewriting -----------------------------------------------------------

    def _apply_patterns(self, admitted: List[DictPattern]) -> Set[int]:
        """Rewrite every function with the newly admitted patterns.

        Returns the indices of functions whose slots actually changed —
        the only ones whose candidate contributions the next pass must
        re-scan.
        """
        changed: Set[int] = set()
        combos_by_first, singles_by_shape = prepare_rewrite(admitted)
        for index, fn in enumerate(self.slots.functions):
            if rewrite_function(fn, combos_by_first, singles_by_shape):
                changed.add(index)
        return changed

    # -- driver ------------------------------------------------------------

    def _shutdown_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def run(self) -> BuildResult:
        journal = self._journal
        try:
            while self.passes < self.max_passes:
                self.passes += 1
                t0 = time.perf_counter()
                journal_pass = None
                if journal is not None:
                    from .journal import PassJournal

                    journal_pass = PassJournal()
                    journal.passes.append(journal_pass)
                self._refresh_savings()
                savings = self._savings
                # Snapshot before admission: the pass's candidate count is
                # the merged map minus patterns already admitted when the
                # scan ran, exactly what the full-rescan filter reported.
                candidates = len(savings) - self._dict_overlap
                if journal_pass is not None:
                    journal_pass.candidates = candidates
                    journal_pass.live = sorted(self._live)
                # The live set is exactly {cand : benefit(cand) > 0} and
                # benefit == savings - floor, so the heap (and therefore
                # the admission order) matches a full benefit sweep.  The
                # tie-break keys come from the pattern objects, so the
                # order is invariant under id assignment.
                patterns = self._tables.patterns
                heap = []
                for cid in self._live:
                    cand = patterns[cid]
                    heap.append((self._floor(cid) - savings[cid],
                                 cand.dictionary_size(), str(cand), cand))
                heapq.heapify(heap)
                admitted: List[DictPattern] = []
                while heap and len(admitted) < self.k:
                    _, _, _, cand = heapq.heappop(heap)
                    admitted.append(cand)
                    self._admit(cand)
                if journal_pass is not None:
                    ids = self._tables.ids
                    journal_pass.admitted = [ids[p] for p in admitted]
                if admitted:
                    self._changed = self._apply_patterns(admitted)
                self.pass_stats.append(PassStats(
                    candidates=candidates,
                    admitted=len(admitted),
                    seconds=time.perf_counter() - t0,
                ))
                if len(admitted) < self.k:
                    break
        finally:
            self._shutdown_pool()
        if journal is not None:
            journal.seen = sorted(self.seen)
            journal.candidates_tested = self.candidates_tested
        return BuildResult(
            slots=self.slots,
            dictionary=self.dictionary,
            candidates_tested=self.candidates_tested,
            passes=self.passes,
            base_patterns=self.base_patterns,
            pass_stats=self.pass_stats,
            workers=self.workers,
            warm_patterns=self.warm_patterns,
            journal=journal,
        )


def _config_sig(k: int, abundant_memory: bool, max_passes: int) -> str:
    """Builder-knob signature stored in the journal; replay refuses a
    journal recorded under different knobs."""
    return f"k={k};abundant={abundant_memory};passes={max_passes}"


def build_dictionary(
    program: Union[VMProgram, SlotProgram],
    k: int = 20,
    abundant_memory: bool = False,
    max_passes: int = 40,
    workers: Optional[int] = None,
    warm_start: Optional[Sequence[DictPattern]] = None,
    prune: bool = True,
    journal: bool = False,
) -> BuildResult:
    """Run greedy BRISC dictionary construction over ``program``.

    ``workers`` shards the per-pass candidate scan over a process pool;
    the result is byte-identical to the serial builder regardless of the
    worker count.  ``warm_start`` seeds the dictionary with shared
    corpus patterns before the first pass; ``prune=False`` falls back to
    re-scoring every candidate every pass (identical output, used as the
    determinism reference).  ``journal=True`` additionally records a
    pass-by-pass replay journal on the result (see
    :mod:`repro.brisc.journal`) that lets a later build of an edited
    program skip re-scoring unchanged functions.
    """
    return BriscBuilder(program, k, abundant_memory, max_passes,
                        workers=workers, warm_start=warm_start,
                        prune=prune, journal=journal).run()
