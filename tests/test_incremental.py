"""Function-grained incremental recompilation.

Covers the acceptance criteria of the incremental-compilation change:

* ``split_unit`` carves a translation unit into an environment digest
  plus per-function digests, bailing (``None``) on anything it cannot
  prove it understood;
* ``reusable_functions`` admits exactly the functions whose tokens,
  environment, and string-literal label bindings are unchanged;
* ``Toolchain.compile(prev=...)`` on an edited unit is **byte-identical**
  to a cold compile of the new source across every binary artifact
  (wire, deflate, BRISC image, VM encoding), while re-deriving the
  unchanged functions instead of re-running the stages;
* the BRISC journal replay path reproduces the cold image exactly, and
  journaled builds are byte-identical to plain ones;
* delta reuse is refused across configuration changes and missing
  journals (conservative cold fallback, never a wrong artifact);
* stage statistics account replays and cache hits separately, and a
  cache-hit compile is not charged a second build's runs or seconds.
"""

from repro.pipeline import Toolchain
from repro.pipeline.incremental import (
    DeltaCompiler, function_strings, reusable_functions, split_unit,
)
from repro.cfront import compile_to_ast

BASE = """
int add(int a, int b) { return a + b; }
int twice(int x) { return add(x, x); }
int main(void) { print_int(twice(21)); putchar('\\n'); return 0; }
"""

#: ``twice`` edited (new constant), everything else untouched.
EDITED = BASE.replace("add(x, x)", "add(x, x + 0)")

#: Repetitive bodies so the greedy BRISC builder does real work and the
#: journal replay has passes to replay.
BIG = "\n".join(
    f"int f{i}(int a, int b) {{ return a * {i} + b; }}" for i in range(40)
) + "\nint main(void) { return f1(1, 2); }"

BIG_EDIT = BIG.replace("int f7(int a, int b) { return a * 7 + b; }",
                       "int f7(int a, int b) { return a * 9 + b; }")

def binary_artifacts(result):
    out = {s: result.artifacts[s].payload for s in ("wire", "deflate")}
    out["brisc"] = result.brisc.image.blob
    out["vm"] = result.vm_code_bytes
    return out


def assert_byte_identical(a, b):
    fa, fb = binary_artifacts(a), binary_artifacts(b)
    assert fa.keys() == fb.keys()
    for stage in fa:
        assert fa[stage] == fb[stage], f"{stage} artifact diverged"


# ---------------------------------------------------------------------------
# unit shape
# ---------------------------------------------------------------------------


class TestSplitUnit:
    def test_finds_every_function(self):
        shape = split_unit(BASE)
        assert shape is not None
        assert shape.order == ("add", "twice", "main")
        assert set(shape.fn_digests) == {"add", "twice", "main"}

    def test_body_edit_changes_only_that_function(self):
        before, after = split_unit(BASE), split_unit(EDITED)
        assert before.env_digest == after.env_digest
        assert before.fn_digests["add"] == after.fn_digests["add"]
        assert before.fn_digests["main"] == after.fn_digests["main"]
        assert before.fn_digests["twice"] != after.fn_digests["twice"]

    def test_globals_and_prototypes_go_to_env(self):
        a = split_unit("int g; int f(void);\nint main(void) { return g; }")
        b = split_unit("int g; int h(void);\nint main(void) { return g; }")
        assert a is not None and b is not None
        assert a.order == b.order == ("main",)
        assert a.env_digest != b.env_digest

    def test_whitespace_is_not_significant(self):
        spaced = BASE.replace("return a + b;", "return  a  +  b ;")
        assert split_unit(BASE).fn_digests == split_unit(spaced).fn_digests

    def test_duplicate_definition_bails(self):
        dup = BASE + "\nint add(int a, int b) { return a - b; }"
        assert split_unit(dup) is None

    def test_unparsable_source_bails(self):
        assert split_unit("int main(void) { return 0;") is None
        assert split_unit("@#$") is None


class TestReusableFunctions:
    def test_only_edited_function_dropped(self):
        old = compile_to_ast(BASE, "u")
        new = compile_to_ast(EDITED, "u")
        names = reusable_functions(BASE, old, EDITED, new)
        assert names == frozenset({"add", "main"})

    def test_signature_change_invalidates_whole_unit(self):
        changed = BASE.replace("int twice(int x)", "long twice(int x)")
        old = compile_to_ast(BASE, "u")
        new = compile_to_ast(changed, "u")
        assert reusable_functions(BASE, old, changed, new) == frozenset()

    def test_new_string_literal_invalidates_sharers(self):
        """sema labels string literals unit-wide in first-appearance
        order; an edit that shifts the numbering must drop every function
        whose bindings moved."""
        old_src = ('int a(void) { puts("x"); return 0; }\n'
                   'int main(void) { puts("y"); return a(); }')
        new_src = ('int a(void) { puts("w"); puts("x"); return 0; }\n'
                   'int main(void) { puts("y"); return a(); }')
        old = compile_to_ast(old_src, "u")
        new = compile_to_ast(new_src, "u")
        names = reusable_functions(old_src, old, new_src, new)
        assert "a" not in names
        assert names <= frozenset({"main"})
        strings = function_strings(new)
        assert set(strings["a"]) == {"w", "x"}


# ---------------------------------------------------------------------------
# delta compile end-to-end
# ---------------------------------------------------------------------------


class TestDeltaCompile:
    def test_byte_identical_to_cold_compile(self):
        tc = Toolchain()
        config = tc.config.with_journal().with_brisc(k=6)
        cold = tc.compile(BIG, name="u", config=config)
        delta = tc.compile(BIG_EDIT, name="u", config=config, prev=cold)
        fresh = Toolchain().compile(BIG_EDIT, name="u", config=config)
        assert_byte_identical(delta, fresh)

    def test_unchanged_functions_are_spliced_not_rebuilt(self):
        tc = Toolchain()
        config = tc.config.with_journal().with_brisc(k=6)
        cold = tc.compile(BIG, name="u", config=config)
        delta = tc.compile(BIG_EDIT, name="u", config=config, prev=cold)
        lower = delta.artifacts["lower"].meta
        assert lower.get("derived") is True
        assert lower["reused_functions"] == len(delta.module.functions) - 1
        codegen = delta.artifacts["codegen"].meta
        assert codegen.get("derived") is True
        brisc = delta.artifacts["brisc"].meta
        assert brisc.get("replayed") is True
        assert brisc["changed_functions"] == 1

    def test_replays_counted_separately_from_runs(self):
        tc = Toolchain()
        config = tc.config.with_journal().with_brisc(k=6)
        cold = tc.compile(BIG, name="u", config=config)
        tc.compile(BIG_EDIT, name="u", config=config, prev=cold)
        stages = tc.stats()["stages"]
        assert stages["lower"]["replays"] == 1
        assert stages["codegen"]["replays"] == 1
        assert stages["brisc"]["replays"] == 1
        totals = tc.stats()["totals"]
        assert totals["replays"] >= 3
        assert 0.0 <= totals["hit_rate"] <= 1.0

    def test_identical_source_is_a_plain_cache_hit(self):
        tc = Toolchain()
        cold = tc.compile(BASE, name="u")
        again = tc.compile(BASE, name="u", prev=cold)
        assert all(a.from_cache for a in again.artifacts.values())
        assert all(s["replays"] == 0
                   for s in tc.stats()["stages"].values())

    def test_config_change_disables_delta_for_affected_stages(self):
        """Changing k rewrites only the brisc stage's config fragment, so
        lower/codegen may still derive but the brisc build must go cold
        (the k=6 journal cannot prove anything about a k=8 build)."""
        tc = Toolchain()
        config = tc.config.with_journal().with_brisc(k=6)
        cold = tc.compile(BIG, name="u", config=config)
        other = config.with_brisc(k=8)
        delta = tc.compile(BIG_EDIT, name="u", config=other, prev=cold)
        assert delta.artifacts["brisc"].meta.get("replayed") is not True
        fresh = Toolchain().compile(BIG_EDIT, name="u", config=other)
        assert_byte_identical(delta, fresh)

    def test_prev_without_config_disables_delta(self):
        tc = Toolchain()
        cold = tc.compile(BIG, name="u")
        cold.config = None  # a result predating the field
        delta = tc.compile(BIG_EDIT, name="u", prev=cold)
        assert not any(a.meta.get("derived") or a.meta.get("replayed")
                       for a in delta.artifacts.values())

    def test_no_journal_falls_back_cold_on_brisc(self):
        tc = Toolchain()
        config = tc.config.with_brisc(k=6)  # journal off
        cold = tc.compile(BIG, name="u", config=config)
        delta = tc.compile(BIG_EDIT, name="u", config=config, prev=cold)
        assert delta.artifacts["brisc"].meta.get("replayed") is not True
        fresh = Toolchain().compile(BIG_EDIT, name="u", config=config)
        assert_byte_identical(delta, fresh)

    def test_chained_edits_stay_byte_identical(self):
        tc = Toolchain()
        config = tc.config.with_journal().with_brisc(k=6)
        first = tc.compile(BIG, name="u", config=config)
        second = tc.compile(BIG_EDIT, name="u", config=config, prev=first)
        third_src = BIG_EDIT.replace("a * 3 + b", "a * 5 + b")
        third = tc.compile(third_src, name="u", config=config, prev=second)
        fresh = Toolchain().compile(third_src, name="u", config=config)
        assert_byte_identical(third, fresh)

    def test_compile_many_prev_map(self):
        tc = Toolchain()
        config = tc.config.with_journal().with_brisc(k=6)
        units = [("a", BIG), ("b", BASE)]
        prev = {item.unit: item.result
                for item in tc.compile_many(units, config=config)}
        edited = [("a", BIG_EDIT), ("b", BASE)]
        items = tc.compile_many(edited, config=config, prev=prev)
        assert all(item.ok for item in items)
        by_name = {item.unit: item.result for item in items}
        assert by_name["a"].artifacts["brisc"].meta.get("replayed") is True
        assert all(a.from_cache for a in by_name["b"].artifacts.values())
        fresh = Toolchain().compile(BIG_EDIT, name="a", config=config)
        assert_byte_identical(by_name["a"], fresh)


# ---------------------------------------------------------------------------
# journal record/replay
# ---------------------------------------------------------------------------


class TestJournal:
    def test_journaled_build_matches_plain_build(self):
        config = Toolchain().config.with_brisc(k=6)
        plain = Toolchain().compile(BIG, name="u", config=config)
        journaled = Toolchain().compile(
            BIG, name="u", config=config.with_journal())
        assert plain.brisc.image.blob == journaled.brisc.image.blob

    def test_journal_is_attached_only_when_requested(self):
        config = Toolchain().config.with_brisc(k=6)
        plain = Toolchain().compile(BIG, name="u", config=config)
        journaled = Toolchain().compile(
            BIG, name="u", config=config.with_journal())
        assert plain.brisc.build.journal is None
        assert journaled.brisc.build.journal is not None
        assert journaled.brisc.build.journal.passes


# ---------------------------------------------------------------------------
# DeltaCompiler internals
# ---------------------------------------------------------------------------


class TestDeltaCompiler:
    def test_compatible_requires_equal_fragments(self):
        tc = Toolchain()
        config = tc.config.with_brisc(k=6)
        prev = tc.compile(BASE, name="u", config=config)
        delta = DeltaCompiler(prev, EDITED, config)
        assert delta._compatible("brisc")
        assert not DeltaCompiler(
            prev, EDITED, config.with_brisc(k=9))._compatible("brisc")

    def test_lower_not_derived_when_nothing_reusable(self):
        tc = Toolchain()
        rewrite = BASE.replace("int add", "long add")
        prev = tc.compile(BASE, name="u")
        delta = tc.compile(rewrite, name="u", prev=prev)
        assert delta.artifacts["lower"].meta.get("derived") is not True
        fresh = Toolchain().compile(rewrite, name="u")
        assert_byte_identical(delta, fresh)
