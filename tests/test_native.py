"""Synthetic native target tests."""


import repro
from repro.native import PPCLike, PentiumLike, SparcLike
from repro.vm.instr import Instr
from repro.vm.isa import REG_SP


LD = Instr("ld.iw", (0, 4, REG_SP))
LD_FAR = Instr("ld.iw", (0, 100000, REG_SP))
LI_SMALL = Instr("li", (0, 5))
LI_BIG = Instr("li", (0, 1 << 20))


class TestPentiumLike:
    def test_variable_length(self):
        t = PentiumLike()
        assert t.instr_size(LD) < t.instr_size(LD_FAR)

    def test_encoding_deterministic(self):
        t = PentiumLike()
        assert t.encode_instr(LD) == t.encode_instr(LD)

    def test_size_matches_encoding(self):
        t = PentiumLike()
        assert t.instr_size(LD) == len(t.encode_instr(LD))

    def test_enter_template_size_reasonable(self):
        """The paper quotes 17 bytes of Pentium code for the [enter sp,*,*]
        template; ours must be the same order of magnitude (single-digit
        to low-tens)."""
        t = PentiumLike()
        size = t.instr_size(Instr("enter", (REG_SP, REG_SP, 24)))
        assert 3 <= size <= 20


class TestPPCLike:
    def test_fixed_width_words(self):
        t = PPCLike()
        for i in (LD, LI_SMALL, Instr("add.i", (0, 1, 2))):
            assert t.instr_size(i) % 4 == 0

    def test_wide_immediates_expand(self):
        t = PPCLike()
        assert t.instr_size(LI_BIG) == 8
        assert t.instr_size(LI_SMALL) == 4

    def test_enter_template_vs_pentium(self):
        """The paper's W example: PPC templates are bigger than Pentium's
        for the same VM instruction group (28 vs 17 bytes for prologue
        material)."""
        ppc = PPCLike()
        pent = PentiumLike()
        blk = Instr("blkcpy", (0, 1, 16))
        assert ppc.instr_size(blk) >= pent.instr_size(blk)


class TestSparcLike:
    def test_fixed_width(self):
        t = SparcLike()
        assert t.instr_size(Instr("add.i", (0, 1, 2))) == 4

    def test_simm13_boundary(self):
        t = SparcLike()
        near = Instr("addi.i", (0, 0, 4000))
        far = Instr("addi.i", (0, 0, 5000))
        assert t.instr_size(near) == 4
        assert t.instr_size(far) == 8


class TestProgramSizes:
    def test_program_size_sums_functions(self):
        prog = repro.compile_c(
            "int f(int a) { return a + 1; } int main(void) { return f(1); }")
        t = SparcLike()
        assert t.program_size(prog) == sum(
            t.function_size(fn) for fn in prog.functions)

    def test_sparc_is_4_bytes_per_instr_at_least(self):
        prog = repro.compile_c("int main(void) { return 0; }")
        t = SparcLike()
        assert t.program_size(prog) >= 4 * prog.instruction_count()

    def test_cycle_model_positive(self):
        t = PentiumLike()
        assert t.instr_cycles(LD) >= 1
