"""De-tuned abstract machine tests (the paper's ablation substrate).

Every variant must produce semantically identical programs; the de-tuned
machines just spell the same computation with fewer instruction forms.
"""

import pytest

from repro.cfront import compile_to_ast
from repro.codegen import ABLATION_VARIANTS, generate_program
from repro.corpus.samples import SAMPLES
from repro.ir import lower_unit
from repro.vm import run_program
from repro.vm.isa import SPEC


def build(src, isa, name="m"):
    return generate_program(lower_unit(compile_to_ast(src, name), name), isa)


class TestVariantDefinitions:
    def test_paper_rows_present(self):
        names = [isa.name for isa in ABLATION_VARIANTS]
        assert names == ["RISC", "minus immediates",
                         "minus register-displacement", "minus both"]

    def test_allows_respects_flags(self):
        full, no_imm, no_disp, minimal = ABLATION_VARIANTS
        addi = SPEC["addi.i"]
        ld = SPEC["ld.iw"]
        li = SPEC["li"]
        assert full.allows(addi) and full.allows(ld)
        assert not no_imm.allows(addi) and no_imm.allows(ld)
        assert no_disp.allows(addi) and not no_disp.allows(ld)
        assert not minimal.allows(addi) and not minimal.allows(ld)
        # li is the one immediate primitive every variant keeps.
        for isa in ABLATION_VARIANTS:
            assert isa.allows(li)


class TestEmittedForms:
    SRC = "int f(int a) { return a + 3; } int main(void) { return f(1); }"

    def instr_names(self, isa):
        prog = build(self.SRC, isa)
        return {i.name for fn in prog.functions for i in fn.code}

    def test_full_machine_uses_immediates_and_disp(self):
        names = self.instr_names(ABLATION_VARIANTS[0])
        assert "addi.i" in names
        assert any(n.startswith("ld.") or n.startswith("st.") for n in names)

    def test_minus_immediates_avoids_alui_and_brimm(self):
        names = self.instr_names(ABLATION_VARIANTS[1])
        assert not any(SPEC[n].needs_immediates for n in names)
        assert "li" in names

    def test_minus_regdisp_uses_indirect_memory(self):
        names = self.instr_names(ABLATION_VARIANTS[2])
        assert not any(SPEC[n].needs_regdisp for n in names)
        assert any(n.startswith("ldx.") or n.startswith("stx.")
                   for n in names)

    def test_minimal_machine_uses_neither(self):
        names = self.instr_names(ABLATION_VARIANTS[3])
        assert not any(
            SPEC[n].needs_immediates or SPEC[n].needs_regdisp for n in names)


class TestSemanticEquivalence:
    @pytest.mark.parametrize("sample", ["wc", "calc", "strings"])
    def test_all_variants_agree_on_samples(self, sample):
        outputs = set()
        for isa in ABLATION_VARIANTS:
            prog = build(SAMPLES[sample], isa, sample)
            res = run_program(prog, max_steps=20_000_000)
            outputs.add((res.exit_code, res.output))
        assert len(outputs) == 1

    def test_detuned_code_is_larger(self):
        """Removing addressing modes and immediates inflates the
        *uncompressed* code — the ad hoc compression the paper describes."""
        from repro.vm import program_size

        full = program_size(build(SAMPLES["calc"], ABLATION_VARIANTS[0]))
        minimal = program_size(build(SAMPLES["calc"], ABLATION_VARIANTS[3]))
        assert minimal > full

    def test_detuned_code_has_more_instructions(self):
        full = build(SAMPLES["calc"], ABLATION_VARIANTS[0])
        minimal = build(SAMPLES["calc"], ABLATION_VARIANTS[3])
        assert minimal.instruction_count() > full.instruction_count()


class TestBriscOnVariants:
    """BRISC must stay semantics-preserving on every abstract machine —
    the ablation's compressed programs are real, runnable images."""

    @pytest.mark.parametrize("index", [0, 1, 2, 3])
    def test_compressed_variant_runs_identically(self, index):
        from repro.brisc import compress, run_image

        isa = ABLATION_VARIANTS[index]
        prog = build(SAMPLES["wc"], isa, "wc")
        base = run_program(prog, max_steps=20_000_000)
        cp = compress(prog, k=8)
        r = run_image(cp.image.blob, max_steps=20_000_000)
        assert (r.exit_code, r.output) == (base.exit_code, base.output)
