"""In-place BRISC interpretation tests: execution equivalence."""

import pytest

import repro
from repro.brisc import BriscInterpreter, compress, run_image
from repro.corpus.samples import SAMPLES
from repro.vm import run_program


def compile_sample(name):
    return repro.compile_c(SAMPLES[name], name)


_EXPECTED = {
    "wc": "4 30 156\n",
    "calc": "7\n21\n16\n20\n182\n",
    "strings": "noisserpmoc edoc\n10\n-1\n16\n",
    "hashtab": "235 -1\n",
}


class TestEquivalence:
    @pytest.mark.parametrize("name", sorted(_EXPECTED))
    def test_cached_interpretation_matches_vm(self, name):
        prog = compile_sample(name)
        base = run_program(prog)
        assert base.output == _EXPECTED[name]
        cp = compress(prog)
        r = run_image(cp.image.blob, cache_decoded=True)
        assert (r.exit_code, r.output) == (base.exit_code, base.output)

    @pytest.mark.parametrize("name", ["wc", "strings"])
    def test_uncached_interpretation_matches_vm(self, name):
        """True in-place mode: every visit re-decodes the slot."""
        prog = compile_sample(name)
        base = run_program(prog)
        cp = compress(prog)
        r = run_image(cp.image.blob, cache_decoded=False)
        assert (r.exit_code, r.output) == (base.exit_code, base.output)

    def test_step_counts_match_plain_vm(self):
        """BRISC executes the same dynamic instruction sequence."""
        prog = compile_sample("wc")
        base = run_program(prog)
        cp = compress(prog)
        r = run_image(cp.image.blob)
        assert r.steps == base.steps

    def test_uncached_decodes_more_slots(self):
        prog = compile_sample("wc")
        cp = compress(prog)
        cached = BriscInterpreter(cp.image.blob, cache_decoded=True)
        cached.run()
        uncached = BriscInterpreter(cp.image.blob, cache_decoded=False)
        uncached.run()
        assert uncached.slots_decoded > cached.slots_decoded

    def test_compression_with_learning_still_equivalent(self):
        # Force real dictionary growth, then check semantics survive
        # specialization + combination + Markov encoding.
        fns = "\n".join(
            f"int f{i}(int a, int b) {{ return a * {i + 1} + b; }}"
            for i in range(30)
        )
        src = fns + """
            int main(void) {
                int acc = 0;
                acc += f0(1, 2); acc += f7(3, 4); acc += f29(5, 6);
                print_int(acc);
                return 0;
            }
        """
        prog = repro.compile_c(src)
        base = run_program(prog)
        cp = compress(prog, k=8)
        assert cp.build.dictionary_size > cp.build.base_patterns  # learned
        r = run_image(cp.image.blob)
        assert (r.exit_code, r.output) == (base.exit_code, base.output)

    def test_entry_args_forwarded(self):
        prog = repro.compile_c("""
            int main(void) { return 0; }
            int square(int x) { return x * x; }
        """)
        cp = compress(prog)
        interp = BriscInterpreter(cp.image.blob)
        result = interp.run("square", args=(9,))
        assert result.exit_code == 81

    def test_jump_into_mid_block_rejected(self):
        prog = compile_sample("wc")
        cp = compress(prog)
        interp = BriscInterpreter(cp.image.blob)
        from repro.vm.interp import VMError
        with pytest.raises(VMError):
            interp._context_at(0, 1)  # offset 1 is mid-slot
