"""The pipeline's stages: source → trees → VM code → compressed forms.

Each :class:`Stage` declares its upstream (``requires``), contributes a
configuration fragment to the cache key, and produces one payload plus
size/meta measurements.  The stage graph mirrors the paper's toolchain::

    source ──parse──► AST ──lower──► IR module ──codegen──► VM program
                                         │                     │
                                       wire               brisc, deflate

``vm_code_bytes`` lives here (not in :mod:`repro.bench.measure`) because
the VM code segment is itself a pipeline artifact: the deflate stage
compresses it, and ``python -m repro sizes`` reports it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..cfront import compile_to_ast
from ..codegen import generate_program
from ..compress import deflate
from ..compress.streams import pack_streams, unpack_streams
from ..ir import lower_unit
from ..vm.encode import encode_function
from ..vm.instr import VMProgram
from ..vm import program_size
from ..wire import encode_module
from .config import PipelineConfig

__all__ = [
    "STAGES", "STAGE_NAMES", "Stage", "BriscStage", "CodegenStage",
    "DeflateStage", "LowerStage", "ParseStage", "WireStage",
    "finish_brisc", "resolve_stages", "vm_code_bytes",
]


def vm_code_bytes(program: VMProgram) -> bytes:
    """The program's code segment in the base VM binary encoding."""
    symbol_ids = {fn.name: i for i, fn in enumerate(program.functions)}
    for g in program.globals:
        symbol_ids.setdefault(g.name, len(symbol_ids))
    return b"".join(encode_function(fn, symbol_ids) for fn in program.functions)


class Stage:
    """One pipeline step.

    ``requires`` names the upstream stage whose payload this stage
    consumes (``None`` consumes the raw source text).  ``config_fragment``
    returns the part of the configuration this stage's output depends on;
    it is hashed into the stage's cache key.
    """

    name: str = ""
    requires: Optional[str] = None

    def config_fragment(self, config: PipelineConfig) -> str:
        return ""

    def run(self, value: Any, unit: str,
            config: PipelineConfig) -> Tuple[Any, int, Dict[str, Any]]:
        """Produce ``(payload, size_bytes, meta)`` from the upstream value."""
        raise NotImplementedError


class ParseStage(Stage):
    """C source → typed AST (the full front end: lex, parse, sema)."""

    name = "parse"
    requires = None

    def run(self, value, unit, config):
        source: str = value
        ast = compile_to_ast(source, unit)
        return ast, len(source.encode()), {}


class LowerStage(Stage):
    """AST → lcc-style tree IR module."""

    name = "lower"
    requires = "parse"

    def run(self, value, unit, config):
        module = lower_unit(value, unit)
        trees = sum(len(fn.forest) for fn in module.functions)
        nodes = sum(t.size for fn in module.functions for t in fn.forest)
        meta = {"functions": len(module.functions), "trees": trees,
                "nodes": nodes}
        return module, 0, meta


class CodegenStage(Stage):
    """IR module → linked VM program (size = VM binary encoding)."""

    name = "codegen"
    requires = "lower"

    def config_fragment(self, config):
        isa = config.isa
        return f"isa={isa.name};imm={isa.immediates};regdisp={isa.regdisp}"

    def run(self, value, unit, config):
        program = generate_program(value, config.isa)
        meta = {
            "functions": len(program.functions),
            "instructions": sum(len(fn.code) for fn in program.functions),
        }
        return program, program_size(program), meta


class WireStage(Stage):
    """IR module → wire-format blob.

    ``meta["code_size"]`` is the code-segments-only size (meta and symbol
    streams excluded), the paper's Table-1 metric.
    """

    name = "wire"
    requires = "lower"

    def config_fragment(self, config):
        fragment = f"compress={config.wire_compress}"
        # Only non-default container/codec settings enter the key, so
        # existing v2 deflate cache entries stay valid.
        if config.wire_codec != "deflate":
            fragment += f";codec={config.wire_codec}"
        if config.wire_container != 2:
            fragment += (f";container={config.wire_container}"
                         f";chunk={config.chunk_target_bytes}")
        return fragment

    def run(self, value, unit, config):
        if config.wire_container == 3:
            from ..container import GreedyPlacement
            from ..wire import container_index, encode_module_v3

            blob = encode_module_v3(
                value, compress=config.wire_compress,
                placement=GreedyPlacement(config.chunk_target_bytes))
            index = container_index(blob)
            return blob, len(blob), {
                "code_size": len(blob) - index.header_bytes,
                "chunks": len(index.chunks),
                "index_bytes": index.header_bytes,
            }
        blob = encode_module(value, compress=config.wire_compress,
                             codec=config.wire_codec)
        streams = unpack_streams(blob[4:])
        code_streams = {k: v for k, v in streams.items()
                        if k not in ("meta", "symtab")}
        code_size = 4 + len(pack_streams(code_streams,
                                         compress=config.wire_compress,
                                         codec=config.wire_codec))
        return blob, len(blob), {"code_size": code_size,
                                 "streams": len(streams)}


class BriscStage(Stage):
    """VM program → BRISC :class:`repro.brisc.CompressedProgram`."""

    name = "brisc"
    requires = "codegen"

    def config_fragment(self, config):
        # brisc_workers is intentionally absent: the parallel builder is
        # byte-identical to the serial one, so changing the worker count
        # must not invalidate cached artifacts.  A shared warm-start
        # dictionary *does* change the output, so its content digest is
        # in (but only when one is set, keeping legacy keys stable).
        # Journaling leaves the image bytes untouched but attaches the
        # replay journal to the payload, so it keys separately too.
        fragment = (f"k={config.brisc_k};"
                    f"abundant={config.brisc_abundant_memory};"
                    f"passes={config.brisc_max_passes}")
        if config.brisc_shared_dict is not None:
            fragment += f";dict={config.brisc_shared_dict.digest}"
        if config.brisc_journal:
            fragment += ";journal=1"
        if config.brisc_container != 2:
            fragment += (f";container={config.brisc_container}"
                         f";chunk={config.chunk_target_bytes}")
        return fragment

    def run(self, value, unit, config):
        from ..brisc import compress  # deferred: brisc is the heaviest import

        shared = config.brisc_shared_dict
        cp = compress(value, k=config.brisc_k,
                      abundant_memory=config.brisc_abundant_memory,
                      max_passes=config.brisc_max_passes,
                      workers=config.brisc_workers,
                      warm_start=shared.patterns if shared else None,
                      journal=config.brisc_journal)
        return finish_brisc(cp, config)


def finish_brisc(cp, config: PipelineConfig) -> Tuple[Any, int, Dict[str, Any]]:
    """Post-process a :class:`repro.brisc.CompressedProgram` into a brisc
    stage result: optional v3 repack plus the artifact meta.  Shared by
    the cold stage and the incremental replay path, so both produce
    identical payloads and meta for identical builds."""
    chunk_meta = {}
    if config.brisc_container == 3:
        from ..brisc.encode import container_index, repack_v3
        from ..container import GreedyPlacement

        blob = repack_v3(
            cp.image.blob,
            GreedyPlacement(config.chunk_target_bytes))
        index = container_index(blob)
        cp.image.blob = blob
        # The v3 header re-homes the function/chunk metadata that v2
        # interleaved with the code; report it as index overhead.
        cp.image.breakdown["index"] = (
            index.header_bytes - cp.image.breakdown.get("dictionary", 0)
            - cp.image.breakdown.get("tables", 0)
            - cp.image.breakdown.get("meta", 0))
        chunk_meta = {"chunks": len(index.chunks),
                      "index_bytes": index.header_bytes}
    meta = {
        "code_segment": cp.image.code_segment_size,
        "patterns": cp.image.pattern_count,
        "passes": cp.build.passes,
        "candidates_tested": cp.build.candidates_tested,
        "builder_workers": cp.build.workers,
        "builder_warm_patterns": cp.build.warm_patterns,
        "builder_seconds": round(cp.build.seconds, 6),
        "builder_passes": [
            {"candidates": p.candidates, "admitted": p.admitted,
             "seconds": round(p.seconds, 6)}
            for p in cp.build.pass_stats
        ],
    }
    meta.update(chunk_meta)
    return cp, cp.image.size, meta


class DeflateStage(Stage):
    """VM code segment → deflate blob (the paper's gzip baseline)."""

    name = "deflate"
    requires = "codegen"

    def run(self, value, unit, config):
        code = vm_code_bytes(value)
        blob = deflate.compress(code)
        return blob, len(blob), {"raw_bytes": len(code)}


#: Canonical stage order; dependencies always precede dependents.
STAGES: Tuple[Stage, ...] = (
    ParseStage(), LowerStage(), CodegenStage(), WireStage(), BriscStage(),
    DeflateStage(),
)

STAGE_NAMES: Tuple[str, ...] = tuple(s.name for s in STAGES)

_BY_NAME: Dict[str, Stage] = {s.name: s for s in STAGES}


def resolve_stages(stages=None) -> List[Stage]:
    """The requested stages plus their transitive upstreams, in run order.

    ``None`` selects every stage.
    """
    if stages is None:
        return list(STAGES)
    wanted = set()
    for name in stages:
        stage = _BY_NAME.get(name)
        if stage is None:
            raise KeyError(f"unknown stage {name!r} (have: {STAGE_NAMES})")
        while stage is not None:
            wanted.add(stage.name)
            stage = _BY_NAME.get(stage.requires) if stage.requires else None
    return [s for s in STAGES if s.name in wanted]
