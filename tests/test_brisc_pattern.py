"""BRISC pattern machinery tests."""


from repro.brisc.pattern import (
    Burned, DictPattern, deserialize_pattern,
    imm_class, pattern_of_instr, serialize_pattern,
)
from repro.vm.instr import Instr
from repro.vm.isa import REG_SP


def base(instr):
    return DictPattern((pattern_of_instr(instr),))


LD = Instr("ld.iw", (0, 4, REG_SP))       # the paper's favourite instruction
MOV = Instr("mov.i", (2, 0))
ENTER = Instr("enter", (REG_SP, REG_SP, 24))


class TestImmClasses:
    def test_nibble_x4(self):
        """The paper's -x4 suffix: multiples of four fit a scaled nibble."""
        assert imm_class(0) == "n4"
        assert imm_class(4) == "n4"
        assert imm_class(60) == "n4"

    def test_byte(self):
        assert imm_class(1) == "b"
        assert imm_class(-4) == "b"
        assert imm_class(127) == "b"

    def test_half_and_word(self):
        assert imm_class(1000) == "h"
        assert imm_class(100000) == "w"


class TestMatching:
    def test_base_pattern_matches_same_shape(self):
        p = pattern_of_instr(LD)
        assert p.matches(Instr("ld.iw", (3, 8, REG_SP)))

    def test_base_pattern_rejects_wider_imm(self):
        p = pattern_of_instr(LD)  # offset 4 -> n4 class
        assert not p.matches(Instr("ld.iw", (3, 1000, REG_SP)))

    def test_different_mnemonic_rejected(self):
        assert not pattern_of_instr(LD).matches(MOV)

    def test_burned_field_must_equal(self):
        p = pattern_of_instr(LD).specializations(LD)[0]  # burn rd=n0
        assert p.matches(Instr("ld.iw", (0, 8, REG_SP)))
        assert not p.matches(Instr("ld.iw", (1, 8, REG_SP)))


class TestSpecialization:
    def test_one_field_at_a_time(self):
        """ld.iw n0,4(sp) patternizes into per-field specializations (the
        paper enumerates exactly these candidates)."""
        specs = pattern_of_instr(LD).specializations(LD)
        assert len(specs) == 3  # rd, offset, base — one each
        burned_counts = [
            sum(isinstance(f, Burned) for f in s.fields) for s in specs
        ]
        assert burned_counts == [1, 1, 1]

    def test_specializing_all_fields(self):
        p = pattern_of_instr(LD)
        for _ in range(3):
            p = p.specializations(LD)[0]
        assert all(isinstance(f, Burned) for f in p.fields)
        assert p.matches(LD)

    def test_fully_burned_pattern_has_no_operand_bytes(self):
        p = pattern_of_instr(LD)
        for _ in range(3):
            p = p.specializations(LD)[0]
        assert DictPattern((p,)).operand_bytes() == 0


class TestOperandLayout:
    def test_all_wildcard_ld_packs_nibbles(self):
        # rd (nib) + n4 offset (nib) + rb (nib) -> 2 bytes.
        assert base(LD).operand_bytes() == 2

    def test_burning_one_nibble_saves_via_pairing(self):
        p = pattern_of_instr(LD).specializations(LD)[0]
        assert DictPattern((p,)).operand_bytes() == 1

    def test_mov_is_one_byte(self):
        assert base(MOV).operand_bytes() == 1

    def test_combined_pattern_packs_across_parts(self):
        combined = DictPattern(
            (pattern_of_instr(MOV), pattern_of_instr(MOV))
        )
        # 4 nibbles across both parts -> 2 bytes.
        assert combined.operand_bytes() == 2

    def test_encoded_size_adds_opcode_byte(self):
        assert base(MOV).encoded_size() == base(MOV).operand_bytes() + 1

    def test_wide_imm_class_sizes(self):
        li_w = Instr("li", (0, 100000))
        assert base(li_w).operand_bytes() == 1 + 4  # reg nibble pads + imm32


class TestControlPlacement:
    def test_branch_in_final_part_ok(self):
        p = DictPattern((
            pattern_of_instr(MOV),
            pattern_of_instr(Instr("blti.i", (0, 10, "L"))),
        ))
        assert p.is_control_ok()

    def test_branch_in_first_part_rejected(self):
        p = DictPattern((
            pattern_of_instr(Instr("blti.i", (0, 10, "L"))),
            pattern_of_instr(MOV),
        ))
        assert not p.is_control_ok()

    def test_call_in_middle_rejected(self):
        p = DictPattern((
            pattern_of_instr(Instr("call", ("f",))),
            pattern_of_instr(MOV),
        ))
        assert not p.is_control_ok()


class TestSerialization:
    def roundtrip(self, pattern):
        blob = serialize_pattern(pattern)
        back, pos = deserialize_pattern(blob, 0)
        assert pos == len(blob)
        assert back == pattern
        return blob

    def test_base_pattern(self):
        self.roundtrip(base(LD))

    def test_specialized_pattern(self):
        p = pattern_of_instr(ENTER)
        p = p.specializations(ENTER)[0]
        self.roundtrip(DictPattern((p,)))

    def test_combined_pattern(self):
        self.roundtrip(DictPattern(
            (pattern_of_instr(ENTER), pattern_of_instr(LD))))

    def test_negative_burned_imm(self):
        i = Instr("st.iw", (0, -4, REG_SP))
        p = pattern_of_instr(i)
        for _ in range(3):
            p = p.specializations(i)[0]
        self.roundtrip(DictPattern((p,)))

    def test_burned_symbol(self):
        i = Instr("call", ("pepper",))
        p = pattern_of_instr(i).specializations(i)[0]
        self.roundtrip(DictPattern((p,)))

    def test_double_immediate(self):
        i = Instr("li.d", (0, 2.5))
        p = pattern_of_instr(i).specializations(i)[-1]
        self.roundtrip(DictPattern((p,)))

    def test_dictionary_size_small(self):
        """The paper estimates ~2 bytes per specialized entry; ours must
        stay the same order of magnitude."""
        p = pattern_of_instr(ENTER).specializations(ENTER)[0]
        assert DictPattern((p,)).dictionary_size() <= 10


class TestPaperNotation:
    def test_str_matches_paper_style(self):
        p = pattern_of_instr(LD).specializations(LD)[0]
        text = str(DictPattern((p,)))
        assert text.startswith("[ld.iw")
        combined = DictPattern((pattern_of_instr(MOV), pattern_of_instr(MOV)))
        assert str(combined).startswith("<[mov.i")
