"""Corpus tests: sample goldens, generator determinism, suite structure."""

import pytest

import repro
from repro.corpus import (
    SAMPLES, SUITE_SIZES, build_input, generate_program_source, link_sources,
    sample_names,
)
from repro.vm import run_program

# Golden outputs for every hand-written sample (deterministic programs).
GOLDEN = {
    "wc": "4 30 156\n",
    "sort": "-1601061320\n",
    "calc": "7\n21\n16\n20\n182\n",
    "lzss": "120 113\n",
    "hashtab": "235 -1\n",
    "matrix": "12.25\n4.29326\n",
    "life": "8\n",
    "bf": "Hello World!\n\n",
    "queens": "2 10 4 40 92\n",
    "strings": "noisserpmoc edoc\n10\n-1\n16\n",
    "crc32": "738169\n",
    "bst": "1537 11 0\n",
    "rle": "47 14 1\n",
    "stackvm": "120 120\n",
}


class TestSamples:
    def test_every_sample_has_a_golden(self):
        assert set(GOLDEN) == set(SAMPLES)

    @pytest.mark.parametrize("name", sorted(SAMPLES))
    def test_sample_runs_to_golden_output(self, name):
        res = run_program(repro.compile_c(SAMPLES[name], name),
                          max_steps=5_000_000)
        assert res.exit_code == 0
        assert res.output == GOLDEN[name]

    def test_sample_names_sorted(self):
        assert sample_names() == sorted(SAMPLES)

    def test_lzss_actually_compresses(self):
        """The lzss sample's output is 'original packed': packed < original."""
        n, packed = GOLDEN["lzss"].split()
        assert int(packed) < int(n)

    def test_queens_counts_are_the_known_ones(self):
        # N-queens solutions for n=4..8.
        assert GOLDEN["queens"].split() == ["2", "10", "4", "40", "92"]


class TestGenerator:
    def test_deterministic(self):
        a = generate_program_source(functions=10, seed=3)
        b = generate_program_source(functions=10, seed=3)
        assert a == b

    def test_seed_changes_output(self):
        a = generate_program_source(functions=10, seed=3)
        b = generate_program_source(functions=10, seed=4)
        assert a != b

    def test_size_scales_with_functions(self):
        small = generate_program_source(functions=5, seed=1)
        large = generate_program_source(functions=50, seed=1)
        assert len(large) > len(small) * 3

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_generated_programs_compile_and_terminate(self, seed):
        src = generate_program_source(functions=12, seed=seed)
        res = run_program(repro.compile_c(src), max_steps=10_000_000)
        assert res.exit_code == 0
        assert res.output.endswith("\n")

    def test_generated_output_deterministic_across_runs(self):
        src = generate_program_source(functions=8, seed=9)
        prog = repro.compile_c(src)
        assert run_program(prog).output == run_program(prog).output


class TestLinking:
    def test_link_renames_mains(self):
        linked = link_sources([SAMPLES["wc"], SAMPLES["strings"]])
        assert linked.count("int main(void)") == 1
        assert "sample_main_0" in linked and "sample_main_1" in linked

    def test_linked_program_runs_all_samples(self):
        linked = link_sources([SAMPLES["wc"], SAMPLES["strings"]])
        res = run_program(repro.compile_c(linked))
        assert GOLDEN["wc"] in res.output
        assert "noisserpmoc edoc" in res.output


class TestSuite:
    def test_suite_names(self):
        assert list(SUITE_SIZES) == ["wc", "lcc", "gcc"]

    def test_wc_input_is_small(self):
        inp = build_input("wc")
        assert inp.program.instruction_count() < 200

    def test_inputs_cached(self):
        assert build_input("wc") is build_input("wc")

    def test_unknown_input_rejected(self):
        with pytest.raises(KeyError):
            build_input("word97")

    def test_lcc_larger_than_wc(self):
        # lcc includes every sample; just check relative structure quickly
        # using the cached build (heavy inputs are exercised in benchmarks).
        wc = build_input("wc")
        lcc = build_input("lcc")
        assert lcc.program.instruction_count() > \
            50 * wc.program.instruction_count()
