"""Incremental table regeneration (`python -m repro tables`).

The measurement helpers are monkeypatched to canned rows so these tests
pin the *caching machinery* — state round-trip, re-measure decisions,
cache-key churn detection, NaN serialization, EXPERIMENTS.md patching —
without paying for real BRISC builds.
"""

import json

import pytest

from repro.bench import regen
from repro.bench.measure import AblationRow, BriscRow, WireRow
from repro.pipeline import Toolchain


@pytest.fixture
def measured(monkeypatch):
    """Patch the measurement helpers; returns the per-helper call log."""
    calls = {"wire": [], "brisc": [], "ablation": []}

    def fake_wire(name):
        calls["wire"].append(name)
        return WireRow(name=name, conventional=100, gzipped=50, wire=40)

    def fake_brisc(name, k=20, measure_interp=True):
        calls["brisc"].append((name, measure_interp))
        interp = 9.5 if measure_interp else float("nan")
        return BriscRow(name=name, native_bytes=100, brisc_rel=0.5,
                        gzip_rel=0.4, jit_mb_per_s=1.0,
                        jit_runtime_ratio=1.0, interp_ratio=interp)

    def fake_ablation(name="lcc", k=20):
        calls["ablation"].append(name)
        return [AblationRow(variant="RISC", native_size=100,
                            compressed_size=61)]

    monkeypatch.setattr(regen, "wire_row", fake_wire)
    monkeypatch.setattr(regen, "brisc_row", fake_brisc)
    monkeypatch.setattr(regen, "ablation_rows", fake_ablation)
    return calls


def run(tmp_path, units, **kw):
    return regen.regenerate_tables(
        units=units, state_path=str(tmp_path / "state.json"),
        toolchain=Toolchain(), **kw)


class TestRegenerate:
    def test_second_run_measures_nothing(self, tmp_path, measured):
        first = run(tmp_path, ["wc", "lcc"])
        assert first["measured"] == 2 and first["cached"] == 0
        assert measured["wire"] == ["wc", "lcc"]
        assert measured["ablation"] == ["lcc"]  # lcc only
        second = run(tmp_path, ["wc", "lcc"])
        assert second["measured"] == 0 and second["cached"] == 2
        assert measured["wire"] == ["wc", "lcc"]  # unchanged
        assert second["rows"] == first["rows"]
        assert regen.summary_line(second) == \
            "units: 2 · re-measured: 0 · cached: 2 · churn: 0"

    def test_stage_key_churn_forces_remeasure(self, tmp_path, measured):
        run(tmp_path, ["wc"])
        state_path = tmp_path / "state.json"
        state = json.loads(state_path.read_text())
        state["units"]["wc"]["stage_keys"]["brisc"] = "0" * 16
        state_path.write_text(json.dumps(state))
        report = run(tmp_path, ["wc"])
        assert report["statuses"]["wc"] == "churn"
        assert report["churn"]["wc"] == ["brisc"]
        assert report["measured"] == 1
        assert "churn: 1" in regen.summary_line(report)
        # The refreshed keys heal the state: next run is cached again.
        assert run(tmp_path, ["wc"])["statuses"]["wc"] == "cached"

    def test_source_change_is_measured_not_churn(self, tmp_path, measured):
        run(tmp_path, ["wc"])
        state_path = tmp_path / "state.json"
        state = json.loads(state_path.read_text())
        state["units"]["wc"]["source_digest"] = "0" * 64
        state_path.write_text(json.dumps(state))
        report = run(tmp_path, ["wc"])
        assert report["statuses"]["wc"] == "measured"
        assert report["churn"] == {}

    def test_schema_bump_discards_state(self, tmp_path, measured):
        run(tmp_path, ["wc"])
        state_path = tmp_path / "state.json"
        state = json.loads(state_path.read_text())
        state["schema"] = regen.STATE_SCHEMA + 1
        state_path.write_text(json.dumps(state))
        assert run(tmp_path, ["wc"])["measured"] == 1

    def test_unknown_unit_rejected(self, tmp_path, measured):
        with pytest.raises(KeyError):
            run(tmp_path, ["no-such-unit"])

    def test_skip_interp_nan_roundtrips_as_null(self, tmp_path, measured):
        report = run(tmp_path, ["wc"], skip_interp=True)
        assert measured["brisc"] == [("wc", False)]
        assert report["rows"]["wc"]["t2"]["interp_ratio"] is None
        # The state file is valid strict JSON (no NaN literals)...
        json.loads((tmp_path / "state.json").read_text())
        # ...and rendering restores the NaN for the table formatter.
        _, t2, _ = regen.render_report(report)
        assert "nan" in t2

    def test_gcc_contributes_only_table1(self, tmp_path, measured):
        report = run(tmp_path, ["gcc"])
        assert set(report["rows"]["gcc"]) == {"t1"}
        assert measured["brisc"] == [] and measured["ablation"] == []


class TestRendering:
    def test_write_results_emits_only_populated_tables(self, tmp_path,
                                                       measured):
        report = run(tmp_path, ["wc"])
        written = regen.write_results(report, str(tmp_path / "out"))
        names = [p.rsplit("/", 1)[1] for p in written]
        assert names == ["table1.txt", "table2.txt"]  # no ablation row

    def test_patch_experiments_is_idempotent(self, tmp_path, measured):
        doc = tmp_path / "EXPERIMENTS.md"
        doc.write_text("# header\n\nbody text\n")
        report = run(tmp_path, ["wc", "lcc"])
        assert regen.patch_experiments(report, str(doc)) is True
        first = doc.read_text()
        assert first.startswith("# header")
        assert regen.MARK_BEGIN in first and regen.MARK_END in first
        assert first.count(regen.MARK_BEGIN) == 1
        # Re-patching with identical rows changes nothing.
        assert regen.patch_experiments(report, str(doc)) is False
        assert doc.read_text() == first

    def test_patch_experiments_replaces_existing_block(self, tmp_path,
                                                       measured):
        doc = tmp_path / "EXPERIMENTS.md"
        doc.write_text(f"head\n{regen.MARK_BEGIN}\nstale\n{regen.MARK_END}\n"
                       f"tail\n")
        report = run(tmp_path, ["wc"])
        assert regen.patch_experiments(report, str(doc)) is True
        text = doc.read_text()
        assert "stale" not in text
        assert text.startswith("head\n") and text.rstrip().endswith("tail")
