"""Whole-pipeline integration tests.

For each corpus sample: C source -> tree IR -> wire round-trip -> VM code
-> BRISC round-trip -> execution equivalence across every representation.
"""

import pytest

import repro
from repro.brisc import compress, decompress, run_image
from repro.cfront import compile_to_ast
from repro.codegen import generate_program
from repro.corpus.samples import SAMPLES
from repro.ir import lower_unit
from repro.jit import jit_compile
from repro.vm import run_program
from repro.wire import decode_module, encode_module

FAST_SAMPLES = ["wc", "calc", "hashtab", "strings", "sort", "matrix"]


@pytest.mark.parametrize("name", FAST_SAMPLES)
def test_full_pipeline(name):
    src = SAMPLES[name]
    module = lower_unit(compile_to_ast(src, name), name)

    # Reference execution.
    program = generate_program(module)
    base = run_program(program, max_steps=20_000_000)
    assert base.exit_code == 0

    # Wire: encode, decode, regenerate, re-run.
    wired = decode_module(encode_module(module))
    rewired = run_program(generate_program(wired), max_steps=20_000_000)
    assert (rewired.exit_code, rewired.output) == \
        (base.exit_code, base.output)

    # BRISC: compress, interpret in place, decompress and re-run.
    cp = compress(program)
    inplace = run_image(cp.image.blob, max_steps=20_000_000)
    assert (inplace.exit_code, inplace.output) == \
        (base.exit_code, base.output)
    redecoded = run_program(decompress(cp.image.blob), max_steps=20_000_000)
    assert (redecoded.exit_code, redecoded.output) == \
        (base.exit_code, base.output)

    # JIT: compiles without error and emits code for every function.
    jit = jit_compile(cp.image.blob)
    assert jit.output_bytes > 0


def test_sizes_are_ordered_sensibly():
    """Across the pipeline on a mid-size program: wire < BRISC code segment
    < uncompressed VM encoding < SPARC-like native."""
    from repro.native import SparcLike
    from repro.vm import program_size
    from repro.wire import wire_size

    src = "\n".join(
        SAMPLES[n].replace("int main(void)", f"int m_{n}(void)")
        for n in FAST_SAMPLES
    ) + "\nint main(void) { return m_wc(); }"
    module = lower_unit(compile_to_ast(src, "linked"), "linked")
    program = generate_program(module)

    wire = wire_size(module)
    vm = program_size(program)
    native = SparcLike().program_size(program)
    brisc = compress(program).image.code_segment_size

    assert wire < vm < native
    assert brisc < native


def test_pipeline_through_public_api():
    program = repro.compile_c(SAMPLES["wc"], "wc")
    assert repro.run(program).output == "4 30 156\n"
