"""Synthetic native targets: Pentium-like, PPC-like, SPARC-like."""

from .base import NativeTarget
from .targets import PPCLike, PentiumLike, SparcLike

__all__ = ["NativeTarget", "PPCLike", "PentiumLike", "SparcLike"]
