"""D1 — the design-space ablations the paper discusses in section 2.

"No single code compressor suits all applications" — the paper enumerates
the axes: byte codes vs arithmetic coding, dictionaries, MTF indexing,
stream separation, and Markov modeling.  This bench places concrete points
on those axes using our own pipeline:

* split-stream vs single-stream LZ compression of the same trees;
* MTF+Huffman vs raw literals inside the wire format;
* order-0 vs order-1 arithmetic coding of the VM code bytes (the
  "compresses best, cannot be interpreted" end of the spectrum);
* Markov-context opcode bytes vs a flat 1-byte opcode space for BRISC.
"""


from conftest import save_table
from repro.bench import compressed_suite, render_table, vm_code_bytes
from repro.compress import arith, deflate
from repro.corpus import build_input
from repro.wire import encode_module


def test_design_space_points(benchmark, results_dir):
    def measure():
        inp = build_input("lcc")
        module = inp.module
        code = vm_code_bytes(inp.program)
        cp = compressed_suite("lcc")
        points = {}
        # Wire format (split streams + MTF + Huffman + LZ).
        points["wire (split+MTF+Huffman+LZ)"] = len(encode_module(module))
        # The same container with per-stream LZ disabled.
        points["wire, no final LZ"] = len(encode_module(module,
                                                        compress=False))
        # Single-stream LZ over the raw VM encoding (gzip-the-binary).
        points["deflate(vm code)"] = len(deflate.compress(code))
        # Arithmetic coding of the VM code (max compression, no random
        # access, must be fully decoded before execution).
        points["arith order-0(vm code)"] = len(arith.compress(code))
        points["arith order-1(vm code)"] = len(arith.compress(code, order=1))
        # BRISC: interpretable-in-place.
        points["BRISC code segment"] = cp.image.code_segment_size
        points["vm code (uncompressed)"] = len(code)
        return points

    points = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = render_table(
        ["design point", "bytes"],
        [[k, str(v)] for k, v in sorted(points.items(), key=lambda kv: kv[1])])
    save_table(results_dir, "design_space", text)

    # Shape claims from the paper's design-space discussion:
    # 1. Everything beats the uncompressed encoding.
    base = points["vm code (uncompressed)"]
    for k, v in points.items():
        if k != "vm code (uncompressed)" and "no final LZ" not in k:
            assert v < base, (k, v, base)
    # 2. Order-1 context modeling beats order-0 (the insight behind the
    #    BRISC Markov model).
    assert points["arith order-1(vm code)"] < points["arith order-0(vm code)"]
    # 3. The interpretable representation (BRISC) pays a size premium over
    #    the best non-interpretable coder — the fundamental trade-off.
    assert points["BRISC code segment"] > points["arith order-1(vm code)"]
    # 4. The final LZ stage earns its keep inside the wire format.
    assert points["wire (split+MTF+Huffman+LZ)"] < points["wire, no final LZ"]


def test_mtf_effectiveness_on_literal_streams(benchmark):
    """MTF turns high-locality literal streams into small indices; Huffman
    then squeezes them below raw size (the paper's step 3+4)."""
    from repro.compress.huffman import encode_symbols
    from repro.compress.mtf import mtf_encode
    from repro.wire.patternize import patternize_tree

    module = build_input("lcc").module
    offsets = []
    for fn in module.functions:
        for tree in fn.forest:
            for key, value in patternize_tree(tree)[1]:
                if key.startswith("ADDRLP") and isinstance(value, int):
                    offsets.append(value)

    def mtf_cost():
        indices, novel = mtf_encode(offsets)
        packed = encode_symbols(indices, max(indices) + 1 if indices else 1)
        return len(packed)

    packed_size = benchmark(mtf_cost)
    # Raw encoding would be ≥1 byte per offset.
    assert packed_size < len(offsets)
