"""Greedy BRISC dictionary construction.

The paper's algorithm:

1. start from the base instruction set;
2. scan the program, generating candidate patterns by *operand
   specialization* (one field at a time) and *opcode combination* (each
   adjacent pair, crossed with the zero-or-one-field specializations of
   both sides);
3. estimate each candidate's benefit ``B = P − W`` and keep a heap;
4. after each pass, admit the best ``K`` candidates (default 20, the
   paper's table uses K=20), rewrite the program — combinations first,
   then any instruction that a new pattern represents more compactly;
5. stop after a pass yielding fewer than ``K`` candidates with positive B.

The candidate scan (step 2) is embarrassingly parallel across functions:
each function contributes an independent per-candidate savings total, and
totals merge by addition.  ``workers > 1`` shards the scan over a process
pool; the merged savings map is identical to the serial one, and every
downstream decision (benefit heap, tie-breaking, admission order) runs in
the parent on the merged map, so the admitted dictionary is byte-identical
to the serial builder's.

The returned :class:`BuildResult` carries the final slot program, the
dictionary in admission order, per-pass statistics, and the counters the
paper reports (candidates tested, dictionary size).
"""

from __future__ import annotations

import heapq
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..vm.instr import Instr, VMProgram
from .cost import CostModel
from .pattern import DictPattern
from .slots import Slot, SlotFunction, SlotProgram, build_slots

__all__ = ["BuildResult", "BriscBuilder", "PassStats", "build_dictionary"]

_MAX_PARTS = 4

#: Failures that mean "this host cannot run a process pool at all"
#: (sandboxes without semaphores, missing _multiprocessing, ...).
_POOL_UNAVAILABLE = (OSError, PermissionError, ImportError)

#: Cache type for memoized augmented sets: (pattern, insns) -> patterns.
_AugCache = Dict[Tuple[DictPattern, Tuple[Instr, ...]], List[DictPattern]]


@dataclass
class PassStats:
    """One greedy pass: scan size, admissions, and wall time."""

    candidates: int
    admitted: int
    seconds: float


@dataclass
class BuildResult:
    """Output of dictionary construction."""

    slots: SlotProgram
    dictionary: List[DictPattern]
    candidates_tested: int
    passes: int
    base_patterns: int
    pass_stats: List[PassStats] = field(default_factory=list)
    workers: int = 1

    @property
    def dictionary_size(self) -> int:
        return len(self.dictionary)

    @property
    def seconds(self) -> float:
        return sum(p.seconds for p in self.pass_stats)


def _augmented_set(
    slot: Slot, cache: _AugCache
) -> List[DictPattern]:
    """The slot's pattern plus its one-field specializations (the paper's
    "augmented operand-specialized set"), memoized per (pattern, insns).

    Memoization pays because a slot is rescanned on every pass (up to
    ``max_passes`` times) and because many slots share a pattern/insns
    pair after specialization converges.
    """
    key = (slot.pattern, slot.insns)
    cached = cache.get(key)
    if cached is not None:
        return cached
    out = [slot.pattern]
    for pi, (part, instr) in enumerate(zip(slot.pattern.parts, slot.insns)):
        for spec in part.specializations(instr):
            parts = list(slot.pattern.parts)
            parts[pi] = spec
            out.append(DictPattern(tuple(parts)))
    cache[key] = out
    return out


def _scan_slots(
    slots: List[Slot],
    savings: Dict[DictPattern, int],
    cache: _AugCache,
) -> None:
    """Accumulate one function's raw candidate savings into ``savings``.

    Raw means pre-filter: every candidate whose occurrence saves bytes is
    summed, including patterns already in the dictionary — the caller
    filters those out.  Keeping the scan filter-free is what lets worker
    processes run it without a copy of the (growing) dictionary set.
    """
    for i, slot in enumerate(slots):
        cur_size = slot.size
        # Operand specialization, one field at a time.
        for cand in _augmented_set(slot, cache)[1:]:
            saved = cur_size - cand.encoded_size()
            if saved > 0:
                savings[cand] = savings.get(cand, 0) + saved
        # Opcode combination with the right neighbour.
        if i + 1 >= len(slots):
            continue
        nxt = slots[i + 1]
        if nxt.is_block_start:
            continue
        if len(slot.insns) + len(nxt.insns) > _MAX_PARTS:
            continue
        pair_size = cur_size + nxt.size
        for a in _augmented_set(slot, cache):
            for b in _augmented_set(nxt, cache):
                cand = DictPattern(a.parts + b.parts)
                if not cand.is_control_ok():
                    continue
                saved = pair_size - cand.encoded_size()
                if saved > 0:
                    savings[cand] = savings.get(cand, 0) + saved


def _scan_worker(functions: List[SlotFunction]) -> Dict[DictPattern, int]:
    """Process-pool entry: raw savings for one shard of functions."""
    savings: Dict[DictPattern, int] = {}
    cache: _AugCache = {}
    for fn in functions:
        _scan_slots(fn.slots, savings, cache)
    return savings


def _shard_functions(
    functions: List[SlotFunction], shards: int
) -> List[List[SlotFunction]]:
    """Split functions into ``shards`` groups balanced by slot count.

    Greedy longest-processing-time assignment; merge order is irrelevant
    (savings totals are summed), so balance is all that matters.
    """
    buckets: List[List[SlotFunction]] = [[] for _ in range(shards)]
    loads = [0] * shards
    order = sorted(range(len(functions)),
                   key=lambda i: len(functions[i].slots), reverse=True)
    for i in order:
        target = loads.index(min(loads))
        buckets[target].append(functions[i])
        loads[target] += len(functions[i].slots)
    return [b for b in buckets if b]


class BriscBuilder:
    """Runs the greedy construction over one program.

    ``workers > 1`` parallelizes the per-pass candidate scan over a
    process pool; results are deterministic and byte-identical to the
    serial builder (``workers=1``, the default).  Hosts without process
    support degrade to the serial scan transparently.
    """

    def __init__(
        self,
        program: VMProgram,
        k: int = 20,
        abundant_memory: bool = False,
        max_passes: int = 40,
        workers: Optional[int] = None,
    ) -> None:
        self.slots = build_slots(program)
        self.k = k
        self.cost = CostModel(abundant_memory)
        self.max_passes = max_passes
        self.workers = max(1, workers or 1)
        self.seen: set = set()
        self.dictionary: List[DictPattern] = []
        self.in_dictionary: set = set()
        self.candidates_tested = 0
        self.passes = 0
        self.pass_stats: List[PassStats] = []
        self._aug_cache: _AugCache = {}
        self._pool: Optional[ProcessPoolExecutor] = None
        self._seed_base_patterns()
        self.base_patterns = len(self.dictionary)

    def _seed_base_patterns(self) -> None:
        for fn in self.slots.functions:
            for slot in fn.slots:
                self._admit(slot.pattern)

    def _admit(self, pattern: DictPattern) -> None:
        if pattern not in self.in_dictionary:
            self.in_dictionary.add(pattern)
            self.dictionary.append(pattern)

    # -- candidate generation ----------------------------------------------

    def _augmented_set(self, slot: Slot) -> List[DictPattern]:
        """The slot's augmented operand-specialization set (memoized)."""
        return _augmented_set(slot, self._aug_cache)

    def _raw_savings(self) -> Dict[DictPattern, int]:
        """One scan over every function: candidate -> summed bytes saved."""
        if self.workers > 1 and len(self.slots.functions) > 1:
            merged = self._parallel_scan()
            if merged is not None:
                return merged
        savings: Dict[DictPattern, int] = {}
        for fn in self.slots.functions:
            _scan_slots(fn.slots, savings, self._aug_cache)
        return savings

    def _parallel_scan(self) -> Optional[Dict[DictPattern, int]]:
        """Sharded scan over the pool; None when the host has no pools.

        Savings merge by addition, which is commutative, so shard order
        cannot change the merged map.
        """
        try:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            shards = _shard_functions(self.slots.functions, self.workers)
            futures = [self._pool.submit(_scan_worker, s) for s in shards]
            merged: Dict[DictPattern, int] = {}
            for future in futures:
                for cand, saved in future.result().items():
                    merged[cand] = merged.get(cand, 0) + saved
            return merged
        except _POOL_UNAVAILABLE + (BrokenProcessPool,):
            self._shutdown_pool()
            self.workers = 1  # degrade for the remaining passes
            return None

    def _gather_candidates(self) -> Dict[DictPattern, int]:
        """One scan: candidate pattern -> total bytes saved (pre-dictionary
        cost), filtered to patterns not already admitted.  Occurrence
        savings are summed greedily."""
        savings: Dict[DictPattern, int] = {}
        for cand, saved in self._raw_savings().items():
            if cand in self.in_dictionary:
                continue
            if cand not in self.seen:
                self.candidates_tested += 1
                self.seen.add(cand)
            savings[cand] = saved
        return savings

    # -- rewriting -----------------------------------------------------------

    def _apply_patterns(self, admitted: List[DictPattern]) -> None:
        combos = [p for p in admitted if len(p.parts) > 1]
        singles_by_shape: Dict[Tuple[str, ...], List[DictPattern]] = {}
        for p in admitted:
            shape = tuple(part.name for part in p.parts)
            singles_by_shape.setdefault(shape, []).append(p)

        for fn in self.slots.functions:
            # Combination pass: left-to-right, merge windows of slots whose
            # concatenated instructions match a new combined pattern.
            if combos:
                fn.slots = self._combine_function(fn.slots, combos)
            # Specialization pass: adopt any new pattern that represents a
            # slot more compactly.
            for slot in fn.slots:
                shape = tuple(i.name for i in slot.insns)
                best = slot.pattern
                best_size = slot.size
                for cand in singles_by_shape.get(shape, ()):
                    if cand.encoded_size() < best_size and cand.matches(slot.insns):
                        best = cand
                        best_size = cand.encoded_size()
                slot.pattern = best

    def _combine_function(
        self, slots: List[Slot], combos: List[DictPattern]
    ) -> List[Slot]:
        by_first: Dict[str, List[DictPattern]] = {}
        for p in combos:
            by_first.setdefault(p.parts[0].name, []).append(p)
        out: List[Slot] = []
        i = 0
        while i < len(slots):
            slot = slots[i]
            merged = None
            for cand in by_first.get(slot.insns[0].name, ()):
                nparts = len(cand.parts)
                # Collect a window of whole slots covering nparts insns.
                window = [slot]
                total = len(slot.insns)
                j = i + 1
                ok = True
                while total < nparts:
                    if j >= len(slots) or slots[j].is_block_start:
                        ok = False
                        break
                    window.append(slots[j])
                    total += len(slots[j].insns)
                    j += 1
                if not ok or total != nparts:
                    continue
                insns = tuple(ins for s in window for ins in s.insns)
                if not cand.matches(insns):
                    continue
                old = sum(s.size for s in window)
                if cand.encoded_size() >= old:
                    continue
                merged = Slot(
                    insns=insns,
                    pattern=cand,
                    is_block_start=slot.is_block_start,
                    labels=slot.labels,
                )
                i = j
                break
            if merged is not None:
                out.append(merged)
            else:
                out.append(slot)
                i += 1
        return out

    # -- driver ------------------------------------------------------------

    def _shutdown_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def run(self) -> BuildResult:
        try:
            while self.passes < self.max_passes:
                self.passes += 1
                t0 = time.perf_counter()
                savings = self._gather_candidates()
                heap = []
                for cand, saved in savings.items():
                    benefit = self.cost.benefit(cand, saved)
                    if benefit > 0:
                        heap.append(
                            (-benefit, cand.dictionary_size(), str(cand), cand))
                heapq.heapify(heap)
                admitted: List[DictPattern] = []
                while heap and len(admitted) < self.k:
                    _, _, _, cand = heapq.heappop(heap)
                    admitted.append(cand)
                    self._admit(cand)
                if admitted:
                    self._apply_patterns(admitted)
                self.pass_stats.append(PassStats(
                    candidates=len(savings),
                    admitted=len(admitted),
                    seconds=time.perf_counter() - t0,
                ))
                if len(admitted) < self.k:
                    break
        finally:
            self._shutdown_pool()
        return BuildResult(
            slots=self.slots,
            dictionary=self.dictionary,
            candidates_tested=self.candidates_tested,
            passes=self.passes,
            base_patterns=self.base_patterns,
            pass_stats=self.pass_stats,
            workers=self.workers,
        )


def build_dictionary(
    program: VMProgram,
    k: int = 20,
    abundant_memory: bool = False,
    max_passes: int = 40,
    workers: Optional[int] = None,
) -> BuildResult:
    """Run greedy BRISC dictionary construction over ``program``.

    ``workers`` shards the per-pass candidate scan over a process pool;
    the result is byte-identical to the serial builder regardless of the
    worker count.
    """
    return BriscBuilder(program, k, abundant_memory, max_passes,
                        workers=workers).run()
