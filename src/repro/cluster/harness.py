"""The cluster harness: spawn a fleet, drive a batch, optionally break it.

``run_cluster`` is the engine behind ``python -m repro cluster``:

1. compile every corpus unit **in-process** first — the single-node
   reference blobs that every routed result must match byte for byte;
2. spawn N ``repro serve`` nodes (memory-only stores, federated peers)
   and one consistent-hash router in front of them;
3. run ``rounds`` sweeps of the unit list through the router from a
   small thread pool of retrying clients;
4. in ``--chaos`` mode, execute a seeded :func:`~repro.faults.node_kill_schedule`
   concurrently — SIGKILL a node mid-batch, restart it after a delay —
   while the batch keeps going through failover and client retries;
5. after the batch, sweep once more and interrogate every node's stats,
   asserting the acceptance contract: every request completed, every
   blob byte-identical to the reference, and (after any restart) at
   least one artifact refilled over federation instead of recompiled.

Everything is seeded; a failing run reproduces from its command line.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..errors import DecodeError, ServiceError
from ..service.client import ServiceClient
from .router import BackgroundRouter, RouterConfig
from .supervisor import ClusterSupervisor

__all__ = ["ClusterReport", "format_report", "run_cluster"]


@dataclass
class ClusterReport:
    """Everything one cluster run observed, machine-checkable."""

    nodes: int
    units: List[str]
    rounds: int
    chaos: bool
    seed: int
    completed: int = 0
    failed: int = 0
    mismatched: int = 0
    elapsed: float = 0.0
    kills: int = 0
    restarts: int = 0
    failovers: int = 0
    replays: int = 0
    federation_fills: int = 0
    federation_bytes: int = 0
    refilled_after_restart: int = 0
    per_node: Dict[str, Any] = field(default_factory=dict)
    router: Dict[str, Any] = field(default_factory=dict)
    errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        basics = (self.failed == 0 and self.mismatched == 0
                  and not self.errors)
        if self.chaos and self.restarts:
            # A restarted node came back with an empty store; the final
            # sweep must have refilled it from a peer, not a recompile.
            return basics and self.refilled_after_restart > 0
        return basics


def _reference_blobs(units: Sequence[str]) -> Dict[str, bytes]:
    """Single-node ground truth: each unit's wire blob, compiled locally."""
    from ..corpus import get_sample, suite_source
    from ..pipeline import default_toolchain

    toolchain = default_toolchain()
    blobs: Dict[str, bytes] = {}
    for unit in units:
        try:
            source = suite_source(unit)
        except KeyError:
            source = get_sample(unit)
        result = toolchain.compile(source, name=unit, stages=("wire",))
        blobs[unit] = result.wire_blob
    return blobs


def _unit_sources(units: Sequence[str]) -> Dict[str, str]:
    from ..corpus import get_sample, suite_source

    sources: Dict[str, str] = {}
    for unit in units:
        try:
            sources[unit] = suite_source(unit)
        except KeyError:
            sources[unit] = get_sample(unit)
    return sources


class _ChaosRunner(threading.Thread):
    """Execute a kill/restart schedule against the supervisor, off-thread."""

    def __init__(self, supervisor: ClusterSupervisor, schedule,
                 report: ClusterReport) -> None:
        super().__init__(daemon=True, name="repro-cluster-chaos")
        self.supervisor = supervisor
        self.schedule = schedule
        self.report = report
        # Not "_stop": threading.Thread has a private method by that name.
        self._halt = threading.Event()

    def run(self) -> None:
        t0 = time.monotonic()
        events = []  # (when, action, node)
        for kill in self.schedule:
            events.append((kill.at, "kill", kill.node))
            events.append((kill.restart_at, "restart", kill.node))
        events.sort()
        for when, action, node in events:
            delay = when - (time.monotonic() - t0)
            if delay > 0 and self._halt.wait(delay):
                return
            try:
                if action == "kill":
                    self.supervisor.kill(node)
                    self.report.kills += 1
                else:
                    self.supervisor.restart(node)
                    self.report.restarts += 1
            except Exception as exc:
                self.report.errors.append(
                    f"chaos {action} of node {node} failed: "
                    f"{type(exc).__name__}: {exc}")

    def finish(self) -> None:
        """Let any pending restart land, then stop; never leave a node
        down at the end of the batch."""
        self.join(timeout=60.0)
        self._halt.set()
        for node in self.supervisor.nodes:
            if not node.running:
                try:
                    self.supervisor.restart(node.index)
                    self.report.restarts += 1
                except Exception as exc:
                    self.report.errors.append(
                        f"post-batch restart of node {node.index} failed: "
                        f"{type(exc).__name__}: {exc}")


def _batch_worker(host: str, port: int, jobs, sources, references,
                  report: ClusterReport, lock: threading.Lock,
                  deadline: float, retries: int, timeout: float) -> None:
    client = ServiceClient(host, port, timeout=timeout, retries=retries)
    try:
        while True:
            try:
                unit = jobs.pop()
            except IndexError:
                return
            try:
                blob = client.wire(sources[unit], name=unit,
                                   deadline=deadline)
            except (ServiceError, DecodeError, OSError) as exc:
                with lock:
                    report.failed += 1
                    report.errors.append(
                        f"{unit}: {type(exc).__name__}: {exc}")
                continue
            with lock:
                if blob == references[unit]:
                    report.completed += 1
                else:
                    report.mismatched += 1
                    report.errors.append(
                        f"{unit}: blob differs from single-node reference "
                        f"({len(blob)} vs {len(references[unit])} bytes)")
    finally:
        client.close()


def _node_stats(supervisor: ClusterSupervisor,
                timeout: float = 5.0) -> Dict[str, Any]:
    stats: Dict[str, Any] = {}
    for node in supervisor.nodes:
        try:
            with ServiceClient(node.host, node.port,
                               timeout=timeout) as client:
                stats[node.address] = client.stats()
        except (ServiceError, DecodeError, OSError) as exc:
            stats[node.address] = {"error": f"{type(exc).__name__}: {exc}"}
    return stats


def run_cluster(
    units: Sequence[str],
    *,
    nodes: int = 3,
    rounds: int = 2,
    concurrency: int = 4,
    chaos: bool = False,
    kills: int = 1,
    seed: int = 1997,
    restart_after: float = 1.5,
    deadline: float = 30.0,
    retries: int = 4,
    timeout: float = 30.0,
    host: str = "127.0.0.1",
    node_concurrency: int = 2,
) -> ClusterReport:
    """Run one cluster batch; see the module docstring for the phases."""
    units = list(units)
    if not units:
        raise ValueError("at least one corpus unit required")
    report = ClusterReport(nodes=nodes, units=units, rounds=rounds,
                           chaos=chaos, seed=seed)
    references = _reference_blobs(units)
    sources = _unit_sources(units)

    supervisor = ClusterSupervisor(nodes, host=host,
                                   concurrency=node_concurrency,
                                   deadline=max(deadline, 30.0))
    supervisor.start()
    try:
        router = BackgroundRouter(
            supervisor.addresses,
            RouterConfig(host=host, health_interval=0.2,
                         default_deadline=deadline))
        router.start()
        try:
            if not router.wait_alive(nodes, timeout=15.0):
                raise RuntimeError("router never saw every node alive")

            # The router's unit->node assignment, reproduced locally:
            # used to aim chaos kills at nodes that own traffic and to
            # pick the cross-node unit for the post-restart refill probe.
            from .ring import HashRing

            ring = HashRing(supervisor.addresses,
                            replicas=router.router.config.replicas)
            owner_of = {unit: ring.node_for(unit) for unit in units}

            chaos_thread: Optional[_ChaosRunner] = None
            if chaos and kills > 0:
                from dataclasses import replace

                from ..faults import node_kill_schedule

                # Scale the window to the batch's likely duration: one
                # compile per unit lands in the first round, the rest
                # are warm, so most wall-clock is in round one.
                window = max(3.0, 0.5 * len(units))
                schedule = node_kill_schedule(
                    nodes, kills, seed=seed, window=window,
                    restart_after=restart_after)
                # Remap victims onto nodes that own at least one unit:
                # killing a node no unit hashes to would exercise
                # nothing — no failover, and no federation refill for
                # the acceptance check to see.
                owners = sorted({
                    supervisor.addresses.index(address)
                    for address in owner_of.values()
                })
                schedule = [replace(kill, node=owners[kill.node % len(owners)])
                            for kill in schedule]
                chaos_thread = _ChaosRunner(supervisor, schedule, report)

            jobs = [unit for _ in range(rounds) for unit in units]
            jobs.reverse()  # pop() serves them in the written order
            lock = threading.Lock()
            t0 = time.monotonic()
            if chaos_thread is not None:
                chaos_thread.start()
            workers = [
                threading.Thread(
                    target=_batch_worker,
                    args=(host, router.port, jobs, sources, references,
                          report, lock, deadline, retries, timeout),
                    daemon=True, name=f"repro-cluster-client-{i}")
                for i in range(concurrency)
            ]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
            if chaos_thread is not None:
                chaos_thread.finish()
                # The health loop must re-admit every restarted node
                # before the final sweep, or its hash slots would still
                # route to the failover successor.
                if not router.wait_alive(nodes, timeout=15.0):
                    report.errors.append(
                        "router did not re-admit every node after chaos")

            # Final sweep: one more pass of every unit through the
            # router.  A node that restarted with an empty store now
            # owns its hash slots again — requests for its units refill
            # over federation when any peer compiled them during
            # failover.
            _batch_worker(host, router.port, list(reversed(units)),
                          sources, references, report, lock,
                          deadline, retries, timeout)

            # Refill probe: ask each restarted node *directly* for a
            # unit a live peer owns (and therefore holds warm).  The
            # router sweep alone cannot guarantee a refill — a kill
            # that lands between batch requests leaves no peer holding
            # the victim's own units — but a cross-node fetch from an
            # empty store must come back over federation, so this is
            # the deterministic witness that a restarted node heals
            # from its peers instead of recompiling.
            for node in supervisor.nodes:
                if not node.restarts:
                    continue
                probe_units = [u for u, owner in owner_of.items()
                               if owner != node.address]
                if not probe_units:
                    continue
                unit = probe_units[0]
                try:
                    with ServiceClient(node.host, node.port,
                                       timeout=timeout,
                                       retries=retries) as client:
                        blob = client.wire(sources[unit], name=unit,
                                           deadline=deadline)
                except (ServiceError, DecodeError, OSError) as exc:
                    report.errors.append(
                        f"refill probe of node {node.index} with "
                        f"{unit!r} failed: {type(exc).__name__}: {exc}")
                    continue
                if blob != references[unit]:
                    report.mismatched += 1
                    report.errors.append(
                        f"refill probe: {unit!r} from node {node.index} "
                        f"differs from the single-node reference")
                else:
                    report.completed += 1
            report.elapsed = time.monotonic() - t0

            report.per_node = _node_stats(supervisor)
            for stats in report.per_node.values():
                federation = (stats.get("toolchain", {}).get("cache", {})
                              .get("federation", {}))
                fills = int(federation.get("fills", 0))
                report.federation_fills += fills
                report.federation_bytes += int(
                    federation.get("fill_bytes", 0))
            # Fills observed on any node that was killed and restarted:
            # its store was empty, so a fill is necessarily a refill.
            for node in supervisor.nodes:
                if node.restarts:
                    stats = report.per_node.get(node.address, {})
                    federation = (stats.get("toolchain", {})
                                  .get("cache", {}).get("federation", {}))
                    report.refilled_after_restart += int(
                        federation.get("fills", 0))

            try:
                with ServiceClient(host, router.port,
                                   timeout=timeout) as client:
                    router_stats = client.stats()
                report.router = router_stats.get("router", {})
                report.failovers = int(report.router.get("failovers", 0))
                report.replays = int(report.router.get("replays", 0))
            except (ServiceError, DecodeError, OSError) as exc:
                report.errors.append(
                    f"router stats unavailable: {type(exc).__name__}: {exc}")
        finally:
            router.stop()
    finally:
        supervisor.stop()
        report.per_node.setdefault("_supervisor", supervisor.snapshot())
    return report


def format_report(report: ClusterReport) -> str:
    """Human-readable run summary for the CLI."""
    total = report.completed + report.failed + report.mismatched
    lines = [
        f"cluster: {report.nodes} nodes, {len(report.units)} units x "
        f"{report.rounds} rounds"
        + (f", chaos (seed {report.seed})" if report.chaos else ""),
        f"requests : {report.completed}/{total} completed byte-identical "
        f"in {report.elapsed:.2f}s"
        + (f", {report.failed} failed" if report.failed else "")
        + (f", {report.mismatched} MISMATCHED" if report.mismatched else ""),
        f"failover : {report.kills} kills, {report.restarts} restarts, "
        f"{report.failovers} failovers, {report.replays} replays",
        f"federate : {report.federation_fills} fills, "
        f"{report.federation_bytes} bytes copied"
        + (f", {report.refilled_after_restart} refills on restarted nodes"
           if report.restarts else ""),
    ]
    for address, stats in sorted(report.per_node.items()):
        if address.startswith("_"):
            continue
        if "error" in stats:
            lines.append(f"  {address}: {stats['error']}")
            continue
        cache = stats.get("toolchain", {}).get("cache", {})
        federation = cache.get("federation", {})
        out = stats.get("service", {}).get("federation_out", {})
        lines.append(
            f"  {address}: cache {cache.get('hits', 0)} hits / "
            f"{cache.get('misses', 0)} misses, federation in "
            f"{federation.get('fills', 0)} ({federation.get('fill_bytes', 0)}"
            f" B) / out {out.get('pulls', 0)} ({out.get('bytes', 0)} B)")
    lines.append("result   : " + ("OK" if report.ok else "FAILED"))
    for error in report.errors[:10]:
        lines.append(f"  error: {error}")
    if len(report.errors) > 10:
        lines.append(f"  ... and {len(report.errors) - 10} more errors")
    return "\n".join(lines)
