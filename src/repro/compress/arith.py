"""Adaptive arithmetic coding (order-0 and order-1 byte models).

The paper's design-space section places arithmetic coding at the
"compresses best / hardest to interpret" extreme: it codes fractions of a
bit per symbol but forces decompression before execution (the authors used
it per-function).  This module implements a classic 32-bit range arithmetic
coder with adaptive frequency models so the design-space benchmark
(`benchmarks/bench_design_space.py`) can place that extreme on the curve.

The coder follows Witten, Neal & Cleary (CACM 1987), the paper's citation.
The model keeps its cumulative counts in a Fenwick tree, so the two
cumulative lookups per symbol are O(log size) instead of an O(size) list
sum, and the decoder's symbol search is a binary-indexed descend instead
of a linear scan.  The counts themselves are integers updated exactly as
before, so the coded bitstream is unchanged.
"""

from __future__ import annotations

from typing import List, Optional

from .bitio import BitReader, BitWriter

__all__ = ["AdaptiveModel", "ArithmeticEncoder", "ArithmeticDecoder",
           "compress", "decompress"]

_CODE_BITS = 32
_TOP = (1 << _CODE_BITS) - 1
_HALF = 1 << (_CODE_BITS - 1)
_QUARTER = 1 << (_CODE_BITS - 2)
_THREE_QUARTERS = _HALF + _QUARTER
_MAX_TOTAL = 1 << 16


class AdaptiveModel:
    """Adaptive frequency model over ``size`` symbols (plus implicit EOF).

    Frequencies start at 1 (Laplace smoothing) and increment on use; when
    the total exceeds ``_MAX_TOTAL`` all counts are halved, which also
    gives the model mild recency weighting.  ``freq`` stays a plain list
    of per-symbol counts; a Fenwick tree over the same counts serves the
    cumulative queries.
    """

    def __init__(self, size: int) -> None:
        self.size = size
        self.freq = [1] * size
        self.total = size
        # Highest power of two <= size, for the find() descend.
        self._topbit = 1 << (size.bit_length() - 1) if size else 0
        self._rebuild()

    def _rebuild(self) -> None:
        """Recompute the Fenwick tree from ``freq`` (init and halving)."""
        size = self.size
        tree = [0] * (size + 1)
        for i, f in enumerate(self.freq):
            j = i + 1
            while j <= size:
                tree[j] += f
                j += j & -j
        self._tree = tree

    def _prefix(self, count: int) -> int:
        """Sum of the first ``count`` frequencies."""
        tree = self._tree
        acc = 0
        while count:
            acc += tree[count]
            count &= count - 1
        return acc

    def cumulative(self, symbol: int) -> "tuple[int, int, int]":
        """Return (low, high, total) cumulative counts for ``symbol``."""
        low = self._prefix(symbol)
        return low, low + self.freq[symbol], self.total

    def find(self, scaled: int) -> int:
        """Return the symbol whose cumulative range contains ``scaled``."""
        if scaled >= self.total:
            raise ValueError("scaled value outside model total")
        # Largest sym with prefix(sym) <= scaled: descend the tree.
        tree = self._tree
        pos = 0
        rem = scaled
        mask = self._topbit
        size = self.size
        while mask:
            nxt = pos + mask
            if nxt <= size and tree[nxt] <= rem:
                rem -= tree[nxt]
                pos = nxt
            mask >>= 1
        return pos

    def update(self, symbol: int) -> None:
        """Record one occurrence of ``symbol``."""
        self.freq[symbol] += 32
        self.total += 32
        if self.total >= _MAX_TOTAL:
            self.total = 0
            for i, f in enumerate(self.freq):
                self.freq[i] = (f + 1) // 2
                self.total += self.freq[i]
            self._rebuild()
        else:
            tree = self._tree
            size = self.size
            j = symbol + 1
            while j <= size:
                tree[j] += 32
                j += j & -j


class ArithmeticEncoder:
    """Streaming arithmetic encoder writing to a :class:`BitWriter`."""

    def __init__(self, writer: BitWriter) -> None:
        self.writer = writer
        self.low = 0
        self.high = _TOP
        self.pending = 0

    def _emit(self, bit: int) -> None:
        # One batched write: the decided bit, then ``pending`` opposite
        # bits — e.g. pending=3, bit=1 emits 1000, bit=0 emits 0111.
        pending = self.pending
        if pending:
            value = (1 << pending) if bit else ((1 << pending) - 1)
            self.writer.write_bits(value, pending + 1)
            self.pending = 0
        else:
            self.writer.write_bit(bit)

    def encode(self, model: AdaptiveModel, symbol: int) -> None:
        """Encode ``symbol`` under ``model`` and update the model."""
        low_c, high_c, total = model.cumulative(symbol)
        span = self.high - self.low + 1
        self.high = self.low + span * high_c // total - 1
        self.low = self.low + span * low_c // total
        while True:
            if self.high < _HALF:
                self._emit(0)
            elif self.low >= _HALF:
                self._emit(1)
                self.low -= _HALF
                self.high -= _HALF
            elif self.low >= _QUARTER and self.high < _THREE_QUARTERS:
                self.pending += 1
                self.low -= _QUARTER
                self.high -= _QUARTER
            else:
                break
            self.low <<= 1
            self.high = (self.high << 1) | 1
        model.update(symbol)

    def finish(self) -> None:
        """Flush the final interval disambiguation bits."""
        self.pending += 1
        if self.low < _QUARTER:
            self._emit(0)
        else:
            self._emit(1)


class ArithmeticDecoder:
    """Streaming arithmetic decoder reading from a :class:`BitReader`."""

    def __init__(self, reader: BitReader) -> None:
        self.reader = reader
        self.low = 0
        self.high = _TOP
        self.code = 0
        self._exhausted = False
        for _ in range(_CODE_BITS):
            self.code = (self.code << 1) | self._read_bit()

    def _read_bit(self) -> int:
        if self._exhausted:
            return 0
        try:
            return self.reader.read_bit()
        except EOFError:
            # Trailing zeros are implicit after the final flush; remember
            # EOF so the tail doesn't pay an exception per bit.
            self._exhausted = True
            return 0

    def decode(self, model: AdaptiveModel) -> int:
        """Decode one symbol under ``model`` and update the model."""
        span = self.high - self.low + 1
        scaled = ((self.code - self.low + 1) * model.total - 1) // span
        symbol = model.find(scaled)
        low_c, high_c, total = model.cumulative(symbol)
        self.high = self.low + span * high_c // total - 1
        self.low = self.low + span * low_c // total
        while True:
            if self.high < _HALF:
                pass
            elif self.low >= _HALF:
                self.low -= _HALF
                self.high -= _HALF
                self.code -= _HALF
            elif self.low >= _QUARTER and self.high < _THREE_QUARTERS:
                self.low -= _QUARTER
                self.high -= _QUARTER
                self.code -= _QUARTER
            else:
                break
            self.low <<= 1
            self.high = (self.high << 1) | 1
            self.code = (self.code << 1) | self._read_bit()
        model.update(symbol)
        return symbol


def compress(data: bytes, order: int = 0) -> bytes:
    """Arithmetic-code ``data`` with an adaptive byte model.

    ``order=0`` uses a single model; ``order=1`` conditions each byte's
    model on the previous byte (256 models), the analogue of the paper's
    order-1 Markov opcode contexts.
    """
    if order not in (0, 1):
        raise ValueError("only order 0 and 1 models are provided")
    w = BitWriter()
    w.write_bits(len(data), 32)
    enc = ArithmeticEncoder(w)
    if order == 0:
        model = AdaptiveModel(256)
        for b in data:
            enc.encode(model, b)
    else:
        models: List[Optional[AdaptiveModel]] = [None] * 256
        prev = 0
        for b in data:
            m = models[prev]
            if m is None:
                m = models[prev] = AdaptiveModel(256)
            enc.encode(m, b)
            prev = b
    enc.finish()
    return w.getvalue()


def decompress(blob: bytes, order: int = 0) -> bytes:
    """Invert :func:`compress` (the ``order`` must match)."""
    if order not in (0, 1):
        raise ValueError("only order 0 and 1 models are provided")
    r = BitReader(blob)
    n = r.read_bits(32)
    dec = ArithmeticDecoder(r)
    out = bytearray()
    if order == 0:
        model = AdaptiveModel(256)
        for _ in range(n):
            out.append(dec.decode(model))
    else:
        models: List[Optional[AdaptiveModel]] = [None] * 256
        prev = 0
        for _ in range(n):
            m = models[prev]
            if m is None:
                m = models[prev] = AdaptiveModel(256)
            b = dec.decode(m)
            out.append(b)
            prev = b
    return bytes(out)
