"""Bit I/O unit and property tests."""

import pytest
from hypothesis import given, strategies as st

from repro.compress.bitio import (
    BitReader, BitWriter, read_uvarint, uvarint, write_uvarint,
)


class TestBitWriter:
    def test_single_bits_pack_msb_first(self):
        w = BitWriter()
        for bit in (1, 0, 1, 1):
            w.write_bit(bit)
        assert w.getvalue() == bytes([0b1011_0000])

    def test_write_bits_value(self):
        w = BitWriter()
        w.write_bits(0b101, 3)
        w.write_bits(0b11111, 5)
        assert w.getvalue() == bytes([0b1011_1111])

    def test_write_zero_width(self):
        w = BitWriter()
        w.write_bits(0, 0)
        assert w.getvalue() == b""

    def test_value_too_large_rejected(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_bits(4, 2)

    def test_negative_value_rejected(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_bits(-1, 4)

    def test_negative_width_rejected(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_bits(0, -1)

    def test_align_pads_with_zeros(self):
        w = BitWriter()
        w.write_bits(0b1, 1)
        w.align()
        w.write_bits(0xFF, 8)
        assert w.getvalue() == bytes([0b1000_0000, 0xFF])

    def test_write_bytes_aligned_fast_path(self):
        w = BitWriter()
        w.write_bytes(b"\x01\x02")
        assert w.getvalue() == b"\x01\x02"

    def test_write_bytes_unaligned(self):
        w = BitWriter()
        w.write_bit(1)
        w.write_bytes(b"\x80")
        # 1 then 1000_0000 -> 1100_0000 0...
        assert w.getvalue() == bytes([0b1100_0000, 0])

    def test_bit_length_tracks(self):
        w = BitWriter()
        w.write_bits(0b1010, 4)
        assert w.bit_length == 4
        w.write_bits(0xFFFF, 16)
        assert w.bit_length == 20


class TestBitReader:
    def test_read_bits_roundtrip_simple(self):
        w = BitWriter()
        w.write_bits(0x2A, 7)
        w.write_bits(0x1234, 16)
        r = BitReader(w.getvalue())
        assert r.read_bits(7) == 0x2A
        assert r.read_bits(16) == 0x1234

    def test_eof_raises(self):
        r = BitReader(b"\xff")
        r.read_bits(8)
        with pytest.raises(EOFError):
            r.read_bit()

    def test_read_bytes_aligned(self):
        r = BitReader(b"\x01\x02\x03")
        assert r.read_bytes(2) == b"\x01\x02"
        assert r.read_bits(8) == 3

    def test_read_bytes_unaligned(self):
        w = BitWriter()
        w.write_bit(0)
        w.write_bits(0xAB, 8)
        r = BitReader(w.getvalue())
        r.read_bit()
        assert r.read_bytes(1) == b"\xab"

    def test_align_discards_partial_byte(self):
        r = BitReader(b"\xff\x01")
        r.read_bits(3)
        r.align()
        assert r.read_bits(8) == 1

    def test_at_eof(self):
        r = BitReader(b"\x00")
        assert not r.at_eof()
        r.read_bits(8)
        assert r.at_eof()

    def test_bits_consumed(self):
        r = BitReader(b"\x00\x00")
        r.read_bits(5)
        assert r.bits_consumed == 5


@given(st.lists(st.tuples(st.integers(min_value=0), st.integers(1, 32))))
def test_bits_roundtrip_property(fields):
    """Arbitrary (value, width) sequences survive a write/read cycle."""
    fields = [(v & ((1 << w) - 1), w) for v, w in fields]
    w = BitWriter()
    for value, width in fields:
        w.write_bits(value, width)
    r = BitReader(w.getvalue())
    for value, width in fields:
        assert r.read_bits(width) == value


@given(st.lists(st.integers(min_value=0, max_value=2**63)))
def test_uvarint_roundtrip_property(values):
    blob = bytearray()
    for v in values:
        write_uvarint(blob, v)
    pos = 0
    for v in values:
        got, pos = read_uvarint(bytes(blob), pos)
        assert got == v
    assert pos == len(blob)


def test_uvarint_single_byte_for_small_values():
    assert len(uvarint(0)) == 1
    assert len(uvarint(127)) == 1
    assert len(uvarint(128)) == 2


def test_uvarint_rejects_negative():
    with pytest.raises(ValueError):
        uvarint(-1)


def test_uvarint_truncated_raises():
    with pytest.raises(EOFError):
        read_uvarint(b"\x80", 0)


# ---------------------------------------------------------------------------
# typed errors and the take_bytes helper
# ---------------------------------------------------------------------------

from repro.compress.bitio import take_bytes
from repro.errors import (
    CorruptStreamError, DecodeError, TruncatedStreamError,
)


def test_take_bytes_slices_and_advances():
    chunk, pos = take_bytes(b"abcdef", 1, 3, "chunk")
    assert chunk == b"bcd" and pos == 4


def test_take_bytes_zero_length():
    chunk, pos = take_bytes(b"ab", 2, 0, "empty tail")
    assert chunk == b"" and pos == 2


def test_take_bytes_refuses_silent_truncation():
    with pytest.raises(TruncatedStreamError) as exc_info:
        take_bytes(b"abc", 1, 10, "promised payload")
    assert "promised payload" in str(exc_info.value)


def test_take_bytes_rejects_negative_count():
    with pytest.raises(CorruptStreamError):
        take_bytes(b"abc", 0, -1, "negative")


def test_reader_eof_is_typed():
    with pytest.raises(TruncatedStreamError):
        BitReader(b"").read_bits(8)
    with pytest.raises(TruncatedStreamError):
        BitReader(b"\xff").read_bytes(2)


def test_uvarint_errors_are_typed():
    with pytest.raises(TruncatedStreamError):
        read_uvarint(b"\x80", 0)
    # An unterminated 10-byte varint is corruption, not just truncation.
    with pytest.raises(DecodeError):
        read_uvarint(b"\x80" * 11, 0)


def test_typed_errors_still_look_like_builtins():
    """Compatibility: callers catching EOFError/ValueError keep working."""
    assert issubclass(TruncatedStreamError, EOFError)
    assert issubclass(CorruptStreamError, ValueError)


def test_bits_remaining_property():
    reader = BitReader(b"\xab\xcd")
    assert reader.bits_remaining == 16
    reader.read_bits(5)
    assert reader.bits_remaining == 11


# ---------------------------------------------------------------------------
# bulk read_bytes fast path (regression: used to loop read_bits(8) per byte)
# ---------------------------------------------------------------------------


def _forbid_per_bit_calls(monkeypatch):
    """Patch read_bit/read_bits to fail loudly if read_bytes delegates."""

    def boom(self, *args):  # pragma: no cover - only fires on regression
        raise AssertionError("read_bytes fell back to per-bit reads")

    monkeypatch.setattr(BitReader, "read_bit", boom)
    monkeypatch.setattr(BitReader, "read_bits", boom)


def test_read_bytes_aligned_never_reads_per_bit(monkeypatch):
    data = bytes(range(256)) * 4
    r = BitReader(data)
    _forbid_per_bit_calls(monkeypatch)
    assert r.read_bytes(1024) == data
    assert r.at_eof()


def test_read_bytes_unaligned_never_reads_per_bit(monkeypatch):
    w = BitWriter()
    w.write_bits(0b101, 3)
    payload = bytes(range(256)) * 4
    w.write_bytes(payload)
    r = BitReader(w.getvalue())
    assert r.read_bits(3) == 0b101
    _forbid_per_bit_calls(monkeypatch)
    assert r.read_bytes(len(payload)) == payload


def test_read_bytes_reseats_bit_cursor():
    """Bit reads resume correctly after an unaligned bulk read."""
    w = BitWriter()
    w.write_bits(0b11, 2)
    w.write_bytes(b"\x5a\xa5")
    w.write_bits(0b1010, 4)
    r = BitReader(w.getvalue())
    assert r.read_bits(2) == 0b11
    assert r.read_bytes(2) == b"\x5a\xa5"
    assert r.read_bits(4) == 0b1010


@given(st.binary(max_size=64), st.integers(0, 7))
def test_read_bytes_matches_bitwise_reference(payload, skew):
    """Property: bulk reads equal the old per-byte read_bits(8) loop."""
    w = BitWriter()
    w.write_bits((1 << skew) - 1, skew)
    w.write_bytes(payload)
    r_bulk = BitReader(w.getvalue())
    r_bits = BitReader(w.getvalue())
    r_bulk.read_bits(skew)
    r_bits.read_bits(skew)
    reference = bytes(r_bits.read_bits(8) for _ in range(len(payload)))
    assert r_bulk.read_bytes(len(payload)) == reference == payload
    assert r_bulk.bits_consumed == r_bits.bits_consumed
