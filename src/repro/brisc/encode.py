"""BRISC image serialization: byte encoding and decoding.

An image holds the dictionary (serialized patterns), the Markov successor
tables, global data, and per-function code bytes plus the basic-block
start offsets that make the code randomly addressable.  The decoder
reconstructs a runnable :class:`~repro.vm.instr.VMProgram`; semantics are
preserved exactly (labels are regenerated as ``L<offset>``).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..compress.bitio import read_uvarint, take_bytes, write_uvarint
from ..container.chunking import (
    ChunkPlacement, ChunkRecord, ContainerIndex, FunctionExtent,
    FunctionRecord, GreedyPlacement, validate_placement,
)
from ..errors import (
    CorruptStreamError, DEFAULT_LIMITS, ResourceLimits,
    TruncatedStreamError, UnsupportedFormatError, decode_guard,
)
from ..ir.tree import GlobalData, PtrInit, ScalarInit
from ..vm.instr import Instr, VMFunction, VMProgram
from ..vm.isa import Operand
from .markov import CTX_BB, CTX_ENTRY, ESCAPE, MarkovModel, build_markov
from .pattern import (
    Burned, DictPattern, deserialize_pattern, serialize_pattern,
)
from .slots import SlotProgram

__all__ = [
    "BriscImage", "container_index", "decode_function", "decode_image",
    "decode_range", "encode_image", "repack_v3",
]

# Fourth magic byte = container version.  "BRI1" (the seed format) has no
# integrity check; "BRI2" carries a CRC32 of the entire payload right after
# the magic, verified before any parsing, so corruption is detected up
# front instead of mid-dictionary-rebuild.  BRISC is interpreted in place
# from one monolithic image, so a whole-payload CRC plays the role the
# per-stream CRCs play in the (multi-stream) wire container.  "BRI3" is
# the seekable layout: the header (dictionary, tables, globals, function
# metadata, block index) carries its own CRC, and the function code bytes
# move into per-chunk extents each with their own CRC — see the v3
# section below.
_MAGIC_PREFIX = b"BRI"
_MAGIC_V1 = b"BRI1"
_MAGIC = b"BRI2"
_MAGIC_V3 = b"BRI3"
_NIBBLE_CLASSES = {"r", "f", "n4"}
_BYTE_WIDTH = {"b": 1, "h": 2, "w": 4, "l": 2, "s": 2, "d": 8}


@dataclass
class BriscImage:
    """An encoded BRISC program plus its measurement breakdown."""

    blob: bytes
    breakdown: Dict[str, int] = field(default_factory=dict)
    opcode_bytes: int = 0
    operand_bytes: int = 0
    max_successors: int = 0
    pattern_count: int = 0

    def __len__(self) -> int:
        return len(self.blob)

    @property
    def size(self) -> int:
        return len(self.blob)

    @property
    def code_segment_size(self) -> int:
        """Code + dictionary + Markov tables — the paper's metric scope
        ("we compress only code segments"; data/meta are excluded)."""
        return (self.breakdown.get("code", 0)
                + self.breakdown.get("dictionary", 0)
                + self.breakdown.get("tables", 0))


def _zig(v: int) -> int:
    return (v << 1) ^ (v >> 63) if v < 0 else v << 1


def _unzig(z: int) -> int:
    return -(z >> 1) - 1 if z & 1 else z >> 1


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------


def _slot_bytes(
    pattern: DictPattern,
    insns: Tuple[Instr, ...],
    opcode: bytes,
    label_offsets: Dict[str, int],
    symbol_ids: Dict[str, int],
) -> bytes:
    """Opcode byte(s) + packed operand bytes for one slot."""
    out = bytearray(opcode)
    _, classes = pattern.operand_layout()
    values = pattern.wildcard_values(insns)
    assert len(values) == len(classes)
    nibbles: List[int] = []
    wide = bytearray()
    for (cls, value) in values:
        if cls in ("r", "f"):
            nibbles.append(int(value) & 0xF)
        elif cls == "n4":
            nibbles.append((int(value) // 4) & 0xF)
        elif cls in ("b", "h", "w"):
            wide += int(value).to_bytes(_BYTE_WIDTH[cls], "little", signed=True)
        elif cls == "l":
            assert isinstance(value, str)
            wide += label_offsets[value].to_bytes(2, "little")
        elif cls == "s":
            assert isinstance(value, str)
            wide += symbol_ids[value].to_bytes(2, "little")
        else:  # d
            wide += struct.pack("<d", float(value))
    for i in range(0, len(nibbles), 2):
        hi = nibbles[i]
        lo = nibbles[i + 1] if i + 1 < len(nibbles) else 0
        out.append((hi << 4) | lo)
    out += wide
    return bytes(out)


#: Interned single-byte opcodes, so the per-slot fast path allocates
#: nothing (escapes still build their 3-byte form).
_OPCODE_BYTES = [bytes([i]) for i in range(256)]


def _opcode_for(reverse_table: Dict[int, int], pid: int) -> bytes:
    """The context-relative opcode byte (with 2-byte escape if needed).

    ``reverse_table`` maps pattern id -> table index (first occurrence),
    precomputed once per context so the per-slot lookup is O(1) instead
    of an O(n) ``list.index`` scan.
    """
    idx = reverse_table.get(pid, ESCAPE)
    if idx < ESCAPE:
        return _OPCODE_BYTES[idx]
    return _OPCODE_BYTES[ESCAPE] + pid.to_bytes(2, "little")


def _pack_globals(out: bytearray, globals_: List[GlobalData]) -> None:
    write_uvarint(out, len(globals_))
    for g in globals_:
        raw = g.name.encode("utf-8")
        write_uvarint(out, len(raw))
        out.extend(raw)
        write_uvarint(out, g.size)
        write_uvarint(out, g.align)
        out.append(1 if g.is_string else 0)
        write_uvarint(out, len(g.items))
        for item in g.items:
            if isinstance(item, ScalarInit):
                if isinstance(item.value, float) or item.size == 8:
                    out.append(1)
                    write_uvarint(out, item.offset)
                    out.extend(struct.pack("<d", float(item.value)))
                else:
                    out.append(0)
                    write_uvarint(out, item.offset)
                    write_uvarint(out, item.size)
                    write_uvarint(out, _zig(int(item.value)))
            else:
                out.append(2)
                write_uvarint(out, item.offset)
                raw = item.symbol.encode("utf-8")
                write_uvarint(out, len(raw))
                out.extend(raw)


def _take_name(data: bytes, pos: int, what: str) -> Tuple[str, int]:
    n, pos = read_uvarint(data, pos)
    DEFAULT_LIMITS.check(f"{what} length", n, DEFAULT_LIMITS.max_name_bytes)
    raw, pos = take_bytes(data, pos, n, what)
    return raw.decode("utf-8"), pos


def _take_byte(data: bytes, pos: int, what: str) -> Tuple[int, int]:
    if pos >= len(data):
        raise TruncatedStreamError(f"image ends before {what}")
    return data[pos], pos + 1


def _unpack_globals(data: bytes, pos: int) -> Tuple[List[GlobalData], int]:
    count, pos = read_uvarint(data, pos)
    if count > len(data) - pos:  # each global costs several bytes
        raise TruncatedStreamError(
            f"image promises {count} globals, only {len(data) - pos} bytes")
    globals_: List[GlobalData] = []
    for _ in range(count):
        name, pos = _take_name(data, pos, "global name")
        size, pos = read_uvarint(data, pos)
        align, pos = read_uvarint(data, pos)
        flag, pos = _take_byte(data, pos, "global flags")
        is_string = bool(flag)
        nitems, pos = read_uvarint(data, pos)
        if nitems > len(data) - pos:
            raise TruncatedStreamError(
                f"global {name!r} promises {nitems} items, image too short")
        g = GlobalData(name, size, align, is_string=is_string)
        for _ in range(nitems):
            tag, pos = _take_byte(data, pos, "initializer tag")
            offset, pos = read_uvarint(data, pos)
            if tag == 0:
                isize, pos = read_uvarint(data, pos)
                z, pos = read_uvarint(data, pos)
                g.items.append(ScalarInit(offset, isize, _unzig(z)))
            elif tag == 1:
                raw, pos = take_bytes(data, pos, 8, "double initializer")
                g.items.append(ScalarInit(offset, 8, struct.unpack("<d", raw)[0]))
            elif tag == 2:
                symbol, pos = _take_name(data, pos, "pointer symbol")
                g.items.append(PtrInit(offset, symbol))
            else:
                raise CorruptStreamError(f"unknown initializer tag {tag}")
        globals_.append(g)
    return globals_, pos


def encode_image(
    slots: SlotProgram, globals_: List[GlobalData]
) -> Tuple[BriscImage, MarkovModel]:
    """Serialize a slot program into a BRISC image."""
    model, fn_ids = build_markov(slots)
    # Trim stored tables to 255 entries (escape covers the tail).
    stored_tables = {ctx: t[:ESCAPE] for ctx, t in model.tables.items()}
    # Per-context reverse maps (pid -> first index) for O(1) opcode lookup.
    reverse_tables: Dict[int, Dict[int, int]] = {}
    for ctx, table in stored_tables.items():
        reverse: Dict[int, int] = {}
        for i, pid in enumerate(table):
            reverse.setdefault(pid, i)
        reverse_tables[ctx] = reverse
    symbol_ids: Dict[str, int] = {}
    for fn in slots.functions:
        symbol_ids[fn.name] = len(symbol_ids)
    for g in globals_:
        symbol_ids.setdefault(g.name, len(symbol_ids))

    out = bytearray()  # container payload; magic + CRC32 are prepended below
    # Dictionary.
    write_uvarint(out, len(model.patterns))
    dict_start = len(out)
    for pattern in model.patterns:
        out.extend(serialize_pattern(pattern))
    dict_bytes = len(out) - dict_start
    # Tables.
    tables_start = len(out)
    write_uvarint(out, len(stored_tables))
    for ctx in sorted(stored_tables):
        write_uvarint(out, _zig(ctx))
        table = stored_tables[ctx]
        write_uvarint(out, len(table))
        for pid in table:
            write_uvarint(out, pid)
    table_bytes = len(out) - tables_start
    # Globals.
    meta_start = len(out)
    _pack_globals(out, globals_)
    raw = slots.entry.encode("utf-8")
    write_uvarint(out, len(raw))
    out.extend(raw)
    meta_bytes = len(out) - meta_start

    # Functions.
    code_bytes = 0
    opcode_total = 0
    operand_total = 0
    write_uvarint(out, len(slots.functions))
    for fi, fn in enumerate(slots.functions):
        ids = fn_ids[fi]
        # First pass: slot byte offsets (opcode escapes add 2 bytes).
        offsets: List[int] = []
        cursor = 0
        opcodes: List[bytes] = []
        prev: Optional[int] = None
        for i, slot in enumerate(fn.slots):
            if i == 0:
                ctx = CTX_ENTRY
            elif slot.is_block_start:
                ctx = CTX_BB
            else:
                assert prev is not None
                ctx = prev
            opcode = _opcode_for(reverse_tables.get(ctx, {}), ids[i])
            opcodes.append(opcode)
            offsets.append(cursor)
            cursor += len(opcode) + slot.pattern.operand_bytes()
            prev = ids[i]
        total_len = cursor
        label_offsets: Dict[str, int] = {}
        bb_offsets: List[int] = []
        for i, slot in enumerate(fn.slots):
            for label in slot.labels:
                label_offsets[label] = offsets[i]
            if slot.is_block_start and i > 0:
                bb_offsets.append(offsets[i])
        # Second pass: emit.
        body = bytearray()
        for i, slot in enumerate(fn.slots):
            encoded = _slot_bytes(slot.pattern, slot.insns, opcodes[i],
                                  label_offsets, symbol_ids)
            opcode_total += len(opcodes[i])
            operand_total += len(encoded) - len(opcodes[i])
            body += encoded
        assert len(body) == total_len
        code_bytes += total_len

        raw = fn.name.encode("utf-8")
        write_uvarint(out, len(raw))
        out.extend(raw)
        write_uvarint(out, fn.frame_size)
        write_uvarint(out, fn.param_bytes)
        write_uvarint(out, total_len)
        out.extend(body)
        write_uvarint(out, len(bb_offsets))
        last = 0
        for off in bb_offsets:
            write_uvarint(out, off - last)
            last = off

    payload = bytes(out)
    image = BriscImage(
        blob=_MAGIC + zlib.crc32(payload).to_bytes(4, "little") + payload,
        breakdown={
            "dictionary": dict_bytes,
            "tables": table_bytes,
            "meta": meta_bytes,
            "code": code_bytes,
        },
        opcode_bytes=opcode_total,
        operand_bytes=operand_total,
        max_successors=model.max_successors(),
        pattern_count=len(model.patterns),
    )
    return image, model


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------


@dataclass
class DecodedImage:
    """Parsed image: everything needed to interpret or rebuild a program."""

    patterns: List[DictPattern]
    tables: Dict[int, List[int]]
    globals: List[GlobalData]
    entry: str
    functions: List["DecodedFunction"] = field(default_factory=list)


@dataclass
class DecodedFunction:
    name: str
    frame_size: int
    param_bytes: int
    code: bytes
    bb_offsets: Set[int] = field(default_factory=set)


def _brisc_version(blob: bytes) -> int:
    """The container version byte, validated; typed error otherwise."""
    if blob[:3] != _MAGIC_PREFIX:
        raise UnsupportedFormatError("not a BRISC image (bad magic)")
    if len(blob) < 4 or blob[3:4] not in (b"1", b"2", b"3"):
        raise UnsupportedFormatError(
            f"BRISC container version {blob[3:4]!r} is newer than this "
            f"decoder")
    return blob[3] - ord("0")


def _image_payload(blob: bytes) -> bytes:
    """Validate the magic/version/CRC framing; return the bare payload."""
    if blob[:3] != _MAGIC_PREFIX:
        raise UnsupportedFormatError("not a BRISC image (bad magic)")
    version, _ = take_bytes(blob, 3, 1, "BRISC version byte")
    if version == b"1":  # seed format: no integrity check
        return blob[4:]
    if version != b"2":
        raise UnsupportedFormatError(
            f"BRISC container version {version!r} is newer than this decoder")
    stored, pos = take_bytes(blob, 4, 4, "BRISC payload CRC")
    payload = blob[pos:]
    if zlib.crc32(payload) != int.from_bytes(stored, "little"):
        raise CorruptStreamError("BRISC payload CRC mismatch")
    return payload


def _parse_preamble(
    data: bytes, pos: int, limits: ResourceLimits
) -> Tuple[DecodedImage, int, int]:
    """Parse dictionary + tables + globals + entry + function count — the
    part v2 payloads and v3 headers share.  Returns (image shell with no
    functions yet, nfuncs, pos)."""
    npatterns, pos = read_uvarint(data, pos)
    limits.check("pattern count", npatterns, limits.max_patterns)
    if npatterns > len(data) - pos:  # each pattern costs >= 1 byte
        raise TruncatedStreamError(
            f"image promises {npatterns} patterns, "
            f"only {len(data) - pos} bytes remain")
    patterns: List[DictPattern] = []
    for _ in range(npatterns):
        pattern, pos = deserialize_pattern(data, pos)
        patterns.append(pattern)
    ntables, pos = read_uvarint(data, pos)
    if ntables > len(data) - pos:
        raise TruncatedStreamError(
            f"image promises {ntables} tables, image too short")
    tables: Dict[int, List[int]] = {}
    for _ in range(ntables):
        zctx, pos = read_uvarint(data, pos)
        count, pos = read_uvarint(data, pos)
        if count > len(data) - pos:
            raise TruncatedStreamError(
                f"Markov table promises {count} entries, image too short")
        table: List[int] = []
        for _ in range(count):
            pid, pos = read_uvarint(data, pos)
            if pid >= npatterns:
                raise CorruptStreamError(
                    f"Markov table references pattern {pid} "
                    f"of {npatterns}")
            table.append(pid)
        tables[_unzig(zctx)] = table
    globals_, pos = _unpack_globals(data, pos)
    entry, pos = _take_name(data, pos, "entry symbol")
    nfuncs, pos = read_uvarint(data, pos)
    limits.check("function count", nfuncs, limits.max_functions)
    if nfuncs > len(data) - pos:
        raise TruncatedStreamError(
            f"image promises {nfuncs} functions, image too short")
    return DecodedImage(patterns, tables, globals_, entry), nfuncs, pos


def parse_image(
    blob: bytes, limits: Optional[ResourceLimits] = None
) -> DecodedImage:
    """Parse an image's container structure (no slot decoding yet)."""
    limits = limits or DEFAULT_LIMITS
    if _brisc_version(blob) == 3:
        return _parse_image_v3(blob, limits)
    with decode_guard("BRISC image"):
        data = _image_payload(blob)
        out, nfuncs, pos = _parse_preamble(data, 0, limits)
        for _ in range(nfuncs):
            name, pos = _take_name(data, pos, "function name")
            frame, pos = read_uvarint(data, pos)
            params, pos = read_uvarint(data, pos)
            code_len, pos = read_uvarint(data, pos)
            limits.check("function code size", code_len,
                         limits.max_decoded_bytes)
            code, pos = take_bytes(data, pos, code_len,
                                   f"code for function {name!r}")
            nbb, pos = read_uvarint(data, pos)
            if nbb > len(data) - pos:
                raise TruncatedStreamError(
                    f"function {name!r} promises {nbb} block offsets, "
                    f"image too short")
            offsets: Set[int] = set()
            last = 0
            for _ in range(nbb):
                delta, pos = read_uvarint(data, pos)
                last += delta
                if last > len(code):
                    raise CorruptStreamError(
                        f"block offset {last} beyond code of {len(code)} "
                        f"bytes in {name!r}")
                offsets.add(last)
            out.functions.append(
                DecodedFunction(name, frame, params, code, offsets))
        return out


def symbol_names(image: DecodedImage) -> List[str]:
    """Symbol index space: function names first, then global names."""
    names = [fn.name for fn in image.functions]
    for g in image.globals:
        if g.name not in names:
            names.append(g.name)
    return names


def decode_slot(
    image: DecodedImage,
    fn: DecodedFunction,
    offset: int,
    ctx: int,
    names: Optional[List[str]] = None,
) -> Tuple[DictPattern, List[Instr], int]:
    """Decode one slot at ``offset``; returns (pattern, instructions,
    next_offset).  Label operands come back as ``L<offset>`` names;
    symbol indices resolve through ``names`` (default: the image's own
    symbol table)."""
    if names is None:
        names = symbol_names(image)
    code = fn.code
    byte, offset = _take_byte(code, offset, "opcode byte")
    if byte == ESCAPE:
        raw, offset = take_bytes(code, offset, 2, "escaped pattern id")
        pid = int.from_bytes(raw, "little")
    else:
        table = image.tables.get(ctx)
        if table is None or byte >= len(table):
            raise CorruptStreamError(
                f"invalid opcode byte {byte} in context {ctx}")
        pid = table[byte]
    if pid >= len(image.patterns):
        raise CorruptStreamError(
            f"slot references pattern {pid} of {len(image.patterns)}")
    pattern = image.patterns[pid]
    _, classes = pattern.operand_layout()
    nnib = sum(1 for c in classes if c in _NIBBLE_CLASSES)
    nibbles: List[int] = []
    for i in range((nnib + 1) // 2):
        b, offset = _take_byte(code, offset, "operand nibbles")
        nibbles.append(b >> 4)
        nibbles.append(b & 0xF)
    nibbles = nibbles[:nnib]
    values: List[object] = []
    ni = 0
    for cls in classes:
        if cls in ("r", "f"):
            values.append(nibbles[ni])
            ni += 1
        elif cls == "n4":
            values.append(nibbles[ni] * 4)
            ni += 1
        elif cls in ("b", "h", "w"):
            width = _BYTE_WIDTH[cls]
            raw, offset = take_bytes(code, offset, width,
                                     f"{cls!r} operand")
            values.append(int.from_bytes(raw, "little", signed=True))
        elif cls == "l":
            raw, offset = take_bytes(code, offset, 2, "label operand")
            values.append(f"L{int.from_bytes(raw, 'little')}")
        elif cls == "s":
            raw, offset = take_bytes(code, offset, 2, "symbol operand")
            idx = int.from_bytes(raw, "little")
            if idx >= len(names):
                raise CorruptStreamError(
                    f"symbol index {idx} of {len(names)}")
            values.append(names[idx])
        else:
            raw, offset = take_bytes(code, offset, 8, "double operand")
            values.append(struct.unpack("<d", raw)[0])
    # Rebuild concrete instructions.
    instrs: List[Instr] = []
    vi = 0
    for part in pattern.parts:
        operands: List[object] = []
        for f in part.fields:
            if isinstance(f, Burned):
                operands.append(f.value)
            else:
                operands.append(values[vi])
                vi += 1
        instrs.append(Instr(part.name, tuple(operands)))  # type: ignore[arg-type]
    return pattern, instrs, offset


def decode_image(
    blob: bytes, limits: Optional[ResourceLimits] = None
) -> VMProgram:
    """Fully decode an image back into a runnable VM program."""
    image = parse_image(blob, limits=limits)
    with decode_guard("BRISC image"):
        names = symbol_names(image)
        program = VMProgram("decoded", entry=image.entry)
        program.globals = list(image.globals)
        for fn in image.functions:
            vmf = VMFunction(fn.name, frame_size=fn.frame_size,
                             param_bytes=fn.param_bytes)
            offset = 0
            prev: Optional[int] = None
            offset_to_index: Dict[int, int] = {}
            referenced: Set[str] = set()
            while offset < len(fn.code):
                if offset == 0:
                    ctx = CTX_ENTRY
                elif offset in fn.bb_offsets:
                    ctx = CTX_BB
                else:
                    assert prev is not None
                    ctx = prev
                offset_to_index[offset] = len(vmf.code)
                pattern, instrs, next_offset = decode_slot(image, fn, offset,
                                                           ctx, names)
                for instr in instrs:
                    for kind, value in zip(instr.spec.signature,
                                           instr.operands):
                        if kind is Operand.LABEL:
                            referenced.add(str(value))
                vmf.code.extend(instrs)
                # Track which pattern id produced this slot for the context.
                byte = fn.code[offset]
                if byte == ESCAPE:
                    prev = int.from_bytes(fn.code[offset + 1 : offset + 3],
                                          "little")
                else:
                    prev = image.tables[ctx][byte]
                offset = next_offset
            # Labels at every block start and at referenced offsets.
            for off in sorted(set(fn.bb_offsets) | {0}):
                if off in offset_to_index:
                    vmf.labels.setdefault(f"L{off}", offset_to_index[off])
            for label in referenced:
                off = int(label[1:])
                if off not in offset_to_index:
                    raise CorruptStreamError(
                        f"branch to mid-slot offset {off} in {fn.name}")
                vmf.labels.setdefault(label, offset_to_index[off])
            program.functions.append(vmf)
        return program


# ---------------------------------------------------------------------------
# BRI3: the seekable chunked container
# ---------------------------------------------------------------------------
#
# Layout:
#
#   "BRI3" | crc32(header) u32 LE | uvarint header_len | header | chunks
#
# The header is the v2 preamble (dictionary, Markov tables, globals,
# entry) followed by the function metadata — name, frame, params, code
# length, block-start offsets, chunk id — and the chunk table (offset
# relative to the chunk area, stored length, CRC32).  A chunk is simply
# the concatenated code bytes of its member functions (ascending original
# index): BRISC code is already compressed and interpreted in place, so
# chunking moves bytes without re-encoding them, and ``decode_range`` is
# an exact byte slice of what a full ``parse_image`` would see.


def _pack_preamble(out: bytearray, image: DecodedImage) -> None:
    """Re-serialize the shared preamble of a parsed image (the exact
    inverse of :func:`_parse_preamble`)."""
    write_uvarint(out, len(image.patterns))
    for pattern in image.patterns:
        out.extend(serialize_pattern(pattern))
    write_uvarint(out, len(image.tables))
    for ctx in sorted(image.tables):
        write_uvarint(out, _zig(ctx))
        table = image.tables[ctx]
        write_uvarint(out, len(table))
        for pid in table:
            write_uvarint(out, pid)
    _pack_globals(out, image.globals)
    raw = image.entry.encode("utf-8")
    write_uvarint(out, len(raw))
    out.extend(raw)


def repack_v3(
    blob: bytes,
    placement: Optional[ChunkPlacement] = None,
    limits: Optional[ResourceLimits] = None,
) -> bytes:
    """Transcode any BRISC image (v1/v2/v3) into a seekable BRI3 one.

    The function code bytes are moved, never re-encoded, so the chunked
    image decodes to exactly the same program.  ``placement`` groups
    functions into chunks (default greedy, sized in code bytes).
    """
    image = parse_image(blob, limits=limits)
    extents = [FunctionExtent(fn.name, len(fn.code))
               for fn in image.functions]
    placement = placement or GreedyPlacement()
    groups = validate_placement(placement.place(extents), len(extents))
    chunk_of: Dict[int, int] = {}
    for cid, members in enumerate(groups):
        for index in members:
            chunk_of[index] = cid

    header = bytearray()
    _pack_preamble(header, image)
    write_uvarint(header, len(image.functions))
    for index, fn in enumerate(image.functions):
        raw = fn.name.encode("utf-8")
        write_uvarint(header, len(raw))
        header.extend(raw)
        write_uvarint(header, fn.frame_size)
        write_uvarint(header, fn.param_bytes)
        write_uvarint(header, len(fn.code))
        write_uvarint(header, len(fn.bb_offsets))
        last = 0
        for off in sorted(fn.bb_offsets):
            write_uvarint(header, off - last)
            last = off
        write_uvarint(header, chunk_of[index])
    chunk_blobs = [
        b"".join(image.functions[i].code for i in members)
        for members in groups
    ]
    write_uvarint(header, len(chunk_blobs))
    offset = 0
    for chunk_blob in chunk_blobs:
        write_uvarint(header, offset)
        write_uvarint(header, len(chunk_blob))
        header.extend(zlib.crc32(chunk_blob).to_bytes(4, "little"))
        offset += len(chunk_blob)

    prefix = bytearray(_MAGIC_V3)
    prefix.extend(zlib.crc32(bytes(header)).to_bytes(4, "little"))
    write_uvarint(prefix, len(header))
    return bytes(prefix) + bytes(header) + b"".join(chunk_blobs)


def _parse_v3_header(blob: bytes, limits: ResourceLimits) -> Tuple[bytes, int]:
    """Verify the BRI3 prefix framing; returns (header, header_bytes)."""
    stored, pos = take_bytes(blob, 4, 4, "BRISC header CRC")
    hlen, pos = read_uvarint(blob, pos)
    limits.check("BRISC header size", hlen, limits.max_decoded_bytes)
    header, pos = take_bytes(blob, pos, hlen, "BRISC container header")
    if zlib.crc32(header) != int.from_bytes(stored, "little"):
        raise CorruptStreamError("BRISC container header CRC mismatch")
    return header, pos


@dataclass(frozen=True)
class _FnMeta:
    name: str
    frame_size: int
    param_bytes: int
    code_len: int
    bb_offsets: Tuple[int, ...]
    chunk: int


def _unpack_v3_header(
    header: bytes, limits: ResourceLimits
) -> Tuple[DecodedImage, List[_FnMeta], List[Tuple[int, int, int]]]:
    """Parse a BRI3 header into (image shell without functions, function
    metadata, per-chunk (offset, length, crc32))."""
    image, nfuncs, pos = _parse_preamble(header, 0, limits)
    fn_meta: List[_FnMeta] = []
    for _ in range(nfuncs):
        name, pos = _take_name(header, pos, "function name")
        frame, pos = read_uvarint(header, pos)
        params, pos = read_uvarint(header, pos)
        code_len, pos = read_uvarint(header, pos)
        limits.check("function code size", code_len,
                     limits.max_decoded_bytes)
        nbb, pos = read_uvarint(header, pos)
        if nbb > len(header) - pos:
            raise TruncatedStreamError(
                f"function {name!r} promises {nbb} block offsets, "
                f"header too short")
        offsets: List[int] = []
        last = 0
        for _ in range(nbb):
            delta, pos = read_uvarint(header, pos)
            last += delta
            if last > code_len:
                raise CorruptStreamError(
                    f"block offset {last} beyond code of {code_len} "
                    f"bytes in {name!r}")
            offsets.append(last)
        chunk_id, pos = read_uvarint(header, pos)
        fn_meta.append(_FnMeta(name, frame, params, code_len,
                               tuple(offsets), chunk_id))
    nchunks, pos = read_uvarint(header, pos)
    limits.check("chunk count", nchunks, limits.max_streams)
    if nchunks * 6 > len(header) - pos:  # each chunk costs >= 6 bytes
        raise TruncatedStreamError(
            f"header promises {nchunks} chunks, header too short")
    chunk_meta: List[Tuple[int, int, int]] = []
    for _ in range(nchunks):
        offset, pos = read_uvarint(header, pos)
        length, pos = read_uvarint(header, pos)
        raw, pos = take_bytes(header, pos, 4, "chunk CRC")
        chunk_meta.append((offset, length, int.from_bytes(raw, "little")))
    for meta in fn_meta:
        if meta.chunk >= nchunks:
            raise CorruptStreamError(
                f"function {meta.name!r} references chunk {meta.chunk} "
                f"of {nchunks}")
    return image, fn_meta, chunk_meta


def container_index(
    blob: bytes, limits: Optional[ResourceLimits] = None
) -> ContainerIndex:
    """Parse the block index of a BRI3 image (no chunk verification)."""
    limits = limits or DEFAULT_LIMITS
    if _brisc_version(blob) != 3:
        raise UnsupportedFormatError(
            f"{blob[:4]!r} is not a seekable (BRI3) image")
    with decode_guard("BRISC container index"):
        header, base = _parse_v3_header(blob, limits)
        _, fn_meta, chunk_meta = _unpack_v3_header(header, limits)
        index = ContainerIndex(
            kind="brisc", version=3,
            total_bytes=base + sum(length for _, length, _ in chunk_meta),
            header_bytes=base)
        members: Dict[int, List[int]] = {}
        span = 0
        for i, meta in enumerate(fn_meta):
            index.functions.append(
                FunctionRecord(i, meta.name, meta.chunk, span, meta.code_len))
            members.setdefault(meta.chunk, []).append(i)
            span += meta.code_len
        for cid, (offset, length, crc) in enumerate(chunk_meta):
            index.chunks.append(
                ChunkRecord(cid, base + offset, length, crc,
                            tuple(members.get(cid, ()))))
        return index


def _chunk_code(
    blob: bytes,
    chunk: ChunkRecord,
    fn_meta: List[_FnMeta],
) -> Dict[int, bytes]:
    """CRC-check one chunk and split it into per-member code bytes."""
    if chunk.offset + chunk.length > len(blob):
        raise TruncatedStreamError(
            f"chunk {chunk.index} extent [{chunk.offset}, "
            f"{chunk.offset + chunk.length}) beyond the {len(blob)}-byte "
            f"image")
    payload = blob[chunk.offset:chunk.offset + chunk.length]
    if zlib.crc32(payload) != chunk.crc32:
        raise CorruptStreamError(f"chunk {chunk.index} CRC mismatch")
    expected = sum(fn_meta[i].code_len for i in chunk.members)
    if expected != chunk.length:
        raise CorruptStreamError(
            f"chunk {chunk.index} holds {chunk.length} bytes, its members "
            f"need {expected}")
    code: Dict[int, bytes] = {}
    cursor = 0
    for member in chunk.members:
        code[member] = payload[cursor:cursor + fn_meta[member].code_len]
        cursor += fn_meta[member].code_len
    return code


def _v3_function(meta: _FnMeta, code: bytes) -> DecodedFunction:
    return DecodedFunction(meta.name, meta.frame_size, meta.param_bytes,
                           code, set(meta.bb_offsets))


def _parse_image_v3(blob: bytes, limits: ResourceLimits) -> DecodedImage:
    """Full parse of a seekable image: every chunk is CRC-verified."""
    with decode_guard("BRISC image"):
        header, _ = _parse_v3_header(blob, limits)
        image, fn_meta, _ = _unpack_v3_header(header, limits)
    index = container_index(blob, limits)
    with decode_guard("BRISC image"):
        code: Dict[int, bytes] = {}
        for chunk in index.chunks:
            code.update(_chunk_code(blob, chunk, fn_meta))
        image.functions = [_v3_function(meta, code[i])
                           for i, meta in enumerate(fn_meta)]
        return image


def decode_function(
    blob: bytes, name: str, limits: Optional[ResourceLimits] = None
) -> DecodedFunction:
    """Parse one function by name, touching only its covering chunk.

    On a BRI3 image this verifies the header CRC and the target chunk's
    CRC only, so corruption elsewhere cannot poison the read.  v1/v2
    images fall back to a full parse.  The result is exactly the
    function a full :func:`parse_image` would return.
    """
    limits = limits or DEFAULT_LIMITS
    if _brisc_version(blob) != 3:
        image = parse_image(blob, limits=limits)
        for fn in image.functions:
            if fn.name == name:
                return fn
        raise CorruptStreamError(
            f"image has no function {name!r} "
            f"(have: {[f.name for f in image.functions]})")
    index = container_index(blob, limits)
    record = index.function(name)
    with decode_guard("BRISC image"):
        header, _ = _parse_v3_header(blob, limits)
        _, fn_meta, _ = _unpack_v3_header(header, limits)
        code = _chunk_code(blob, index.chunks[record.chunk], fn_meta)
        return _v3_function(fn_meta[record.index], code[record.index])


def decode_range(
    blob: bytes, start: int, length: int,
    limits: Optional[ResourceLimits] = None,
) -> bytes:
    """Code-address-space bytes ``[start, start+length)``.

    The BRISC decoded address space is the concatenation of every
    function's code bytes in image order; the result is byte-identical
    to slicing that concatenation out of a full :func:`parse_image`, but
    on a BRI3 image only the covering chunks are CRC-checked and read.
    Out-of-range spans clamp like a Python slice; negative arguments
    raise a typed error.
    """
    limits = limits or DEFAULT_LIMITS
    if start < 0 or length < 0:
        raise CorruptStreamError(
            f"invalid range request start={start} length={length}")
    end = start + length
    if _brisc_version(blob) != 3:
        whole = b"".join(fn.code
                         for fn in parse_image(blob, limits=limits).functions)
        return whole[start:end]
    index = container_index(blob, limits)
    records = index.functions_in_span(start, length)
    with decode_guard("BRISC image"):
        header, _ = _parse_v3_header(blob, limits)
        _, fn_meta, _ = _unpack_v3_header(header, limits)
        code: Dict[int, bytes] = {}
        for cid in sorted({record.chunk for record in records}):
            code.update(_chunk_code(blob, index.chunks[cid], fn_meta))
        out = bytearray()
        for record in sorted(records, key=lambda r: r.span_start):
            lo = max(start, record.span_start)
            hi = min(end, record.span_start + record.span_length)
            piece = code[record.index]
            out.extend(piece[lo - record.span_start:hi - record.span_start])
        return bytes(out)
