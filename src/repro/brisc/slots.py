"""Program slots: the unit of BRISC encoding.

A slot holds one *or more* concrete VM instructions (after opcode
combination) plus the dictionary pattern currently representing them.  The
concrete instructions are the ground truth; rewriting a slot just picks a
better pattern, and merging concatenates neighbours.

Block starts (function entries and branch targets) are flagged: they anchor
the Markov model's special contexts and bound opcode combination (a jump
target must begin a slot, or the program would branch into the middle of a
fused pattern).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..vm.instr import Instr, VMProgram
from .pattern import DictPattern, pattern_of_instr

__all__ = ["Slot", "SlotFunction", "SlotProgram", "build_slot_function",
           "build_slots"]


@dataclass
class Slot:
    """One encodable unit: concrete instructions + chosen pattern."""

    insns: Tuple[Instr, ...]
    pattern: DictPattern
    is_block_start: bool = False
    labels: Tuple[str, ...] = ()

    @property
    def size(self) -> int:
        """Current encoded size (opcode byte + operand bytes)."""
        return self.pattern.encoded_size()


@dataclass
class SlotFunction:
    """A function as a slot list."""

    name: str
    slots: List[Slot] = field(default_factory=list)
    frame_size: int = 0
    param_bytes: int = 0

    def encoded_code_size(self) -> int:
        return sum(s.size for s in self.slots)


@dataclass
class SlotProgram:
    """A whole program in slot form, plus the pattern dictionary."""

    name: str
    functions: List[SlotFunction] = field(default_factory=list)
    entry: str = "main"

    def encoded_code_size(self) -> int:
        return sum(fn.encoded_code_size() for fn in self.functions)

    def slot_count(self) -> int:
        return sum(len(fn.slots) for fn in self.functions)


def build_slot_function(fn) -> SlotFunction:
    """Initial slots for one VM function: one slot per instruction, base
    patterns.  Factored out of :func:`build_slots` so the incremental
    builder (:mod:`repro.brisc.journal`) can re-slot just the functions
    an edit changed."""
    sf = SlotFunction(fn.name, frame_size=fn.frame_size,
                      param_bytes=fn.param_bytes)
    starts: Dict[int, List[str]] = {}
    for label, index in fn.labels.items():
        starts.setdefault(index, []).append(label)
    # Return addresses land on the slot after a call, so those slots
    # are block starts too — the paper's block beginnings "of various
    # types" (branch targets and post-call resumption points).
    post_call = {
        i + 1 for i, instr in enumerate(fn.code)
        if instr.name in ("call", "calli")
    }
    for i, instr in enumerate(fn.code):
        base = pattern_of_instr(instr)
        sf.slots.append(
            Slot(
                insns=(instr,),
                pattern=DictPattern((base,)),
                is_block_start=(i == 0 or i in starts or i in post_call),
                labels=tuple(sorted(starts.get(i, ()))),
            )
        )
    return sf


def build_slots(program: VMProgram) -> SlotProgram:
    """Initial slot program: one slot per instruction, base patterns."""
    out = SlotProgram(program.name, entry=program.entry)
    for fn in program.functions:
        out.functions.append(build_slot_function(fn))
    return out
