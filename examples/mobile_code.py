"""Mobile code delivery: the paper's transmission-bottleneck scenario.

Usage::

    python examples/mobile_code.py

Builds a medium program, measures its native / wire / BRISC sizes and the
real JIT throughput, then computes time-to-first-useful-work over links
from a 28.8k modem to a 10 Mb LAN — reproducing the paper's conclusion
that the wire code wins over modems while BRISC is the right choice on a
LAN (where delivery masks recompilation).
"""

from repro.bench import render_table
from repro.corpus import generate_program_source
from repro.jit import jit_compile
from repro.native import PentiumLike
from repro.pipeline import Toolchain
from repro.system import (
    DSL_1M, ISDN_128K, LAN_10M, MODEM_28_8, Representation, delivery_time,
)


def main() -> None:
    print("building a medium application (synthetic corpus)...")
    source = generate_program_source(functions=60, seed=21)
    print("compiling and compressing through the pipeline "
          "(wire + BRISC greedy dictionary construction)...")
    res = Toolchain().compile(source, name="app",
                              stages=("wire", "brisc"))
    program = res.program

    native_bytes = PentiumLike().program_size(program)
    wire_bytes = len(res.wire_blob)
    cp = res.brisc
    jit = jit_compile(cp.image.blob)
    jit_rate = jit.output_bytes / max(jit.compile_seconds, 1e-9)

    print(f"\nnative: {native_bytes} B   wire: {wire_bytes} B   "
          f"BRISC: {cp.image.code_segment_size} B   "
          f"JIT @ {jit.mb_per_second:.2f} MB/s\n")

    reps = [
        Representation("native", native_bytes),
        Representation("wire", wire_bytes, decompress_rate=2_000_000,
                       jit_rate=jit_rate, native_bytes=native_bytes),
        Representation("BRISC", cp.image.code_segment_size,
                       jit_rate=jit_rate, native_bytes=native_bytes),
    ]

    rows = []
    for link in (MODEM_28_8, ISDN_128K, DSL_1M, LAN_10M):
        best = None
        for rep in reps:
            r = delivery_time(rep, link)
            rows.append([link.name, rep.name,
                         f"{r.transfer_seconds:8.3f}s",
                         f"{r.prepare_seconds:8.3f}s",
                         f"{r.total_seconds:8.3f}s"])
            if best is None or r.total_seconds < best[1]:
                best = (rep.name, r.total_seconds)
        rows.append([link.name, f"-> winner: {best[0]}", "", "", ""])
    print(render_table(
        ["link", "representation", "transfer", "prepare", "total"], rows))

    print("\nNote how the winner shifts from 'wire' on slow links (size is"
          "\neverything) toward BRISC as bandwidth grows, exactly the"
          "\npaper's guidance for choosing a mobile code representation.")


if __name__ == "__main__":
    main()
