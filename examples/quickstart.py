"""Quickstart: compile C, run it, and compress it both ways.

Usage::

    python examples/quickstart.py

Walks the whole pipeline on a small program: C source -> lcc-style tree IR
-> RISC VM code -> (a) the wire format and (b) BRISC, then executes the
program from every representation to show they agree.
"""

import repro
from repro.brisc import compress, decompress, run_image
from repro.cfront import compile_to_ast
from repro.codegen import generate_program
from repro.compress import deflate
from repro.ir import dump_function, lower_unit
from repro.native import SparcLike
from repro.vm import program_size, run_program
from repro.wire import decode_module, encode_module

SOURCE = r"""
int gcd(int a, int b) {
    while (b) { int t = a % b; a = b; b = t; }
    return a;
}

int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }

int main(void) {
    print_str("gcd(462, 1071) = ");
    print_int(gcd(462, 1071));
    putchar('\n');
    print_str("fib(15) = ");
    print_int(fib(15));
    putchar('\n');
    return 0;
}
"""


def main() -> None:
    print("== 1. compile C to lcc-style tree IR ==")
    module = lower_unit(compile_to_ast(SOURCE, "quickstart"), "quickstart")
    print(dump_function(module.function("gcd")))
    print()

    print("== 2. generate RISC VM code and run it ==")
    program = generate_program(module)
    result = run_program(program)
    print(result.output, end="")
    print(f"(exit {result.exit_code}, {result.steps} instructions)\n")

    print("== 3. sizes across representations ==")
    vm_bytes = program_size(program)
    native = SparcLike().program_size(program)
    wire_blob = encode_module(module)
    brisc = compress(program)
    print(f"  conventional (SPARC-like) : {native:6d} bytes")
    print(f"  VM binary encoding        : {vm_bytes:6d} bytes")
    print(f"  wire format               : {len(wire_blob):6d} bytes")
    print(f"  BRISC image               : {brisc.size:6d} bytes "
          f"(code segment {brisc.image.code_segment_size})")
    print()

    print("== 4. run from every compressed representation ==")
    rewired = run_program(generate_program(decode_module(wire_blob)))
    print(f"  wire round-trip output matches: "
          f"{rewired.output == result.output}")
    inplace = run_image(brisc.image.blob)
    print(f"  BRISC interpreted in place     : "
          f"{inplace.output == result.output}")
    redecoded = run_program(decompress(brisc.image.blob))
    print(f"  BRISC decompressed and re-run  : "
          f"{redecoded.output == result.output}")


if __name__ == "__main__":
    main()
