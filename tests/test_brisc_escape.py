"""Escape-coding tests: contexts whose tables overflow one byte.

Pattern contexts are split (see test_brisc_markov), but the special
basic-block contexts cannot be split — when more than 255 distinct
patterns begin blocks, the encoder falls back to an explicit 2-byte
pattern id behind the 0xFF escape byte.  These tests build such an image
synthetically and prove it decodes and executes.
"""


from repro.brisc.encode import decode_image, encode_image, parse_image
from repro.brisc.markov import ESCAPE
from repro.brisc.pattern import DictPattern, pattern_of_instr
from repro.brisc.slots import Slot, SlotFunction, SlotProgram
from repro.vm.instr import Instr
from repro.vm.interp import run_program


def _specialized(instr):
    """A fully-burned pattern for the instruction (distinct per operands)."""
    p = pattern_of_instr(instr)
    for _ in range(len(p.fields)):
        p = p.specializations(instr)[0]
    return DictPattern((p,))


def _build_overflow_program(n_blocks=300):
    """A function of n_blocks single-slot blocks, each a distinct pattern.

    Every slot is a block start (labelled), so the CTX_BB table holds
    n_blocks distinct patterns — beyond the 255-entry stored table.
    """
    slots = []
    for i in range(n_blocks):
        instr = Instr("li", (0, 1000 + i))
        slots.append(Slot(insns=(instr,), pattern=_specialized(instr),
                          is_block_start=True, labels=(f"B{i}",)))
    hlt = Instr("hlt", ())
    slots.append(Slot(insns=(hlt,),
                      pattern=DictPattern((pattern_of_instr(hlt),)),
                      is_block_start=True, labels=("end",)))
    fn = SlotFunction("main", slots=slots)
    return SlotProgram("overflow", functions=[fn])


def test_escape_bytes_present():
    image, model = encode_image(_build_overflow_program(), [])
    fn_code = parse_image(image.blob).functions[0].code
    assert ESCAPE in fn_code  # at least one escaped opcode


def test_escaped_image_decodes():
    image, _ = encode_image(_build_overflow_program(), [])
    program = decode_image(image.blob)
    assert len(program.functions[0].code) == 301
    names = {i.name for i in program.functions[0].code}
    assert names == {"li", "hlt"}


def test_escaped_image_executes():
    image, _ = encode_image(_build_overflow_program(), [])
    program = decode_image(image.blob)
    result = run_program(program)
    # The last li before hlt loaded 1000 + 299.
    assert result.exit_code == 1299


def test_escaped_image_interprets_in_place():
    from repro.brisc.interp import BriscInterpreter

    image, _ = encode_image(_build_overflow_program(), [])
    interp = BriscInterpreter(image.blob, cache_decoded=False)
    assert interp.run().exit_code == 1299


def test_no_escape_below_limit():
    image, _ = encode_image(_build_overflow_program(100), [])
    parse_image(image.blob)
    # With 101 block patterns the stored bb table holds them all; the only
    # 0xFF bytes possible are operand payload, so decode must still work.
    program = decode_image(image.blob)
    assert run_program(program).exit_code == 1099
