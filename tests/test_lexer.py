"""C lexer tests."""

import pytest

from repro.cfront.errors import CompileError
from repro.cfront.lexer import tokenize
from repro.cfront.tokens import TokenKind as TK


def kinds(src):
    return [t.kind for t in tokenize(src)][:-1]  # drop EOF


def values(src):
    return [t.value for t in tokenize(src)][:-1]


class TestBasics:
    def test_empty_input_gives_eof(self):
        toks = tokenize("")
        assert len(toks) == 1 and toks[0].kind is TK.EOF

    def test_identifiers_and_keywords(self):
        assert kinds("int foo") == [TK.KW_INT, TK.IDENT]

    def test_identifier_with_underscore_and_digits(self):
        toks = tokenize("_f00_bar")
        assert toks[0].kind is TK.IDENT and toks[0].value == "_f00_bar"

    def test_all_keywords_recognized(self):
        for kw in ("void", "char", "short", "int", "long", "float", "double",
                   "signed", "unsigned", "struct", "union", "enum", "typedef",
                   "static", "extern", "const", "if", "else", "while", "do",
                   "for", "switch", "case", "default", "break", "continue",
                   "return", "sizeof", "goto"):
            toks = tokenize(kw)
            assert toks[0].kind.name == f"KW_{kw.upper()}", kw


class TestNumbers:
    def test_decimal(self):
        assert values("0 7 12345") == [0, 7, 12345]

    def test_hex(self):
        assert values("0x0 0xff 0xDEAD") == [0, 255, 0xDEAD]

    def test_hex_with_suffix(self):
        assert values("0x7fffffffu") == [0x7FFFFFFF]

    def test_octal(self):
        assert values("017 010") == [15, 8]

    def test_bad_octal_rejected(self):
        with pytest.raises(CompileError):
            tokenize("09")

    def test_suffixes(self):
        assert values("42u 42L 42ul") == [42, 42, 42]

    def test_floats(self):
        assert values("1.5 0.25 2e3 1.5e-2") == [1.5, 0.25, 2000.0, 0.015]

    def test_float_kind(self):
        assert kinds("3.14") == [TK.FLOAT_LIT]

    def test_leading_dot_float(self):
        assert values(".5") == [0.5]

    def test_hex_needs_digits(self):
        with pytest.raises(CompileError):
            tokenize("0x")


class TestCharsAndStrings:
    def test_plain_char(self):
        assert values("'a'") == [ord("a")]

    def test_escapes(self):
        assert values(r"'\n' '\t' '\0' '\\' '\''") == [10, 9, 0, 92, 39]

    def test_hex_escape(self):
        assert values(r"'\x41'") == [0x41]

    def test_octal_escape(self):
        assert values(r"'\101'") == [65]

    def test_unknown_escape_rejected(self):
        with pytest.raises(CompileError):
            tokenize(r"'\q'")

    def test_unterminated_char(self):
        with pytest.raises(CompileError):
            tokenize("'a")

    def test_string_literal(self):
        assert values('"hello"') == ["hello"]

    def test_string_with_escapes(self):
        assert values(r'"a\nb\0"') == ["a\nb\0"]

    def test_adjacent_strings_concatenate(self):
        assert values('"foo" "bar"') == ["foobar"]

    def test_unterminated_string(self):
        with pytest.raises(CompileError):
            tokenize('"abc')


class TestOperators:
    def test_longest_match_wins(self):
        assert kinds("<<= << <") == [TK.LSHIFT_ASSIGN, TK.LSHIFT, TK.LT]

    def test_arrows_and_dots(self):
        assert kinds("-> . ...") == [TK.ARROW, TK.DOT, TK.ELLIPSIS]

    def test_increments(self):
        assert kinds("++ -- + -") == \
            [TK.PLUSPLUS, TK.MINUSMINUS, TK.PLUS, TK.MINUS]

    def test_compound_assigns(self):
        assert kinds("+= -= *= /= %= &= |= ^= >>=") == [
            TK.PLUS_ASSIGN, TK.MINUS_ASSIGN, TK.STAR_ASSIGN, TK.SLASH_ASSIGN,
            TK.PERCENT_ASSIGN, TK.AMP_ASSIGN, TK.PIPE_ASSIGN, TK.CARET_ASSIGN,
            TK.RSHIFT_ASSIGN,
        ]

    def test_logical(self):
        assert kinds("&& || !") == [TK.AMPAMP, TK.PIPEPIPE, TK.BANG]


class TestTrivia:
    def test_line_comment(self):
        assert kinds("1 // comment\n2") == [TK.INT_LIT, TK.INT_LIT]

    def test_block_comment(self):
        assert kinds("1 /* x\ny */ 2") == [TK.INT_LIT, TK.INT_LIT]

    def test_unterminated_block_comment(self):
        with pytest.raises(CompileError):
            tokenize("/* never closed")

    def test_locations_track_lines(self):
        toks = tokenize("a\n  b")
        assert toks[0].location.line == 1 and toks[0].location.column == 1
        assert toks[1].location.line == 2 and toks[1].location.column == 3

    def test_unexpected_character(self):
        with pytest.raises(CompileError):
            tokenize("int $x;")


class TestEndOfInput:
    """Regression: literals at end-of-input must terminate (the empty
    lookahead string is a member of every Python string, so naive
    membership loops spin forever at EOF)."""

    def test_decimal_at_eof(self):
        assert values("12345") == [12345]

    def test_hex_at_eof(self):
        assert values("0xff") == [255]

    def test_suffix_at_eof(self):
        assert values("42u") == [42]
        assert values("42UL") == [42]

    def test_float_at_eof(self):
        assert values("1.5") == [1.5]

    def test_digit_then_e_at_eof(self):
        # '1e' with nothing after: 'e' is not an exponent here.
        toks = tokenize("1e")
        assert toks[0].value == 1
        assert toks[1].kind is TK.IDENT
