"""Intro measurement M1 — paging and working sets.

"We have seen the CPU idle for most of the time during paging, so
compressing pages can increase total performance even though the CPU must
decompress or interpret the page contents.  Another profile shows that
many functions are called just once, so reduced paging could pay for their
interpretation overhead."  The BRISC results also claim a >40% working-set
reduction.

The bench instantiates the paging model with measured sizes from the lcc
suite input and the measured interpretation slowdown, then locates the
crossovers.
"""


from conftest import save_table
from repro.bench import compressed_suite, render_table
from repro.bench.measure import interp_overhead
from repro.corpus import build_input
from repro.native import PentiumLike
from repro.system import PagingConfig, paging_run, working_set_pages


def test_working_set_reduction(benchmark, results_dir):
    """BRISC "cutting working set size by over 40%" — check our measured
    compressed/native page ratio is a large cut."""
    def measure():
        inp = build_input("lcc")
        cp = compressed_suite("lcc")
        native = PentiumLike().program_size(inp.program)
        return native, cp.image.code_segment_size

    native, compressed = benchmark.pedantic(measure, rounds=1, iterations=1)
    native_pages = working_set_pages(native)
    compressed_pages = working_set_pages(compressed)
    reduction = 1 - compressed_pages / native_pages
    text = render_table(
        ["form", "bytes", "4K pages"],
        [["native", str(native), str(native_pages)],
         ["BRISC", str(compressed), str(compressed_pages)],
         ["reduction", "", f"{reduction:.0%}"]])
    save_table(results_dir, "intro_working_set", text)
    assert reduction > 0.25  # the paper: over 40% on their benchmarks


def test_paging_crossover(benchmark, results_dir):
    """Cold-start runs: compressed pages + interpretation beats native."""
    def measure():
        inp = build_input("lcc")
        cp = compressed_suite("lcc")
        native = PentiumLike().program_size(inp.program)
        _, _, slowdown = interp_overhead("wc")
        return native, cp.image.code_segment_size, slowdown

    native, compressed, slowdown = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    config = PagingConfig(interp_slowdown=max(2.0, slowdown))

    rows = []
    crossover_seen = None
    for instructions in (10**5, 10**6, 10**7, 10**8, 10**9, 10**10):
        results = paging_run(native * 50, compressed * 50, instructions,
                             config)  # x50: model a large application
        n = results["native"].total_seconds
        c = results["compressed-interpreted"].total_seconds
        h = results["hybrid"].total_seconds
        rows.append([f"{instructions:.0e}", f"{n:.3f}s", f"{c:.3f}s",
                     f"{h:.3f}s",
                     "compressed" if c < n else "native"])
        if c < n:
            crossover_seen = instructions
    text = render_table(
        ["instructions", "native", "compressed", "hybrid", "winner"], rows)
    save_table(results_dir, "intro_paging", text)

    # Shape claim: for short, fault-dominated runs the compressed strategy
    # wins (the paper's CPU-idles-during-paging scenario).
    assert crossover_seen is not None

    # And the hybrid never loses to pure-compressed on long runs.
    long_run = paging_run(native * 50, compressed * 50, 10**10, config)
    assert long_run["hybrid"].total_seconds <= \
        long_run["compressed-interpreted"].total_seconds
