"""LZ77 matcher tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compress.lz77 import (
    MAX_MATCH, MIN_MATCH, WINDOW_SIZE, Literal, Match, detokenize, tokenize,
)


class TestTokens:
    def test_literal_validates_range(self):
        with pytest.raises(ValueError):
            Literal(256)
        with pytest.raises(ValueError):
            Literal(-1)

    def test_match_validates_length(self):
        with pytest.raises(ValueError):
            Match(MIN_MATCH - 1, 1)
        with pytest.raises(ValueError):
            Match(MAX_MATCH + 1, 1)

    def test_match_validates_distance(self):
        with pytest.raises(ValueError):
            Match(5, 0)
        with pytest.raises(ValueError):
            Match(5, WINDOW_SIZE + 1)


class TestTokenize:
    def test_empty(self):
        assert tokenize(b"") == []

    def test_incompressible_is_all_literals(self):
        data = bytes(range(10))
        tokens = tokenize(data)
        assert all(isinstance(t, Literal) for t in tokens)

    def test_repetition_produces_matches(self):
        data = b"abcabcabcabcabc"
        tokens = tokenize(data)
        assert any(isinstance(t, Match) for t in tokens)

    def test_overlapping_match_run(self):
        # 'aaaa...' matches itself at distance 1 (RLE via LZ).
        data = b"a" * 100
        tokens = tokenize(data)
        matches = [t for t in tokens if isinstance(t, Match)]
        assert matches and matches[0].distance == 1

    def test_greedy_vs_lazy_both_roundtrip(self):
        data = b"abcxabcyabcxabcy" * 5
        for lazy in (False, True):
            assert detokenize(tokenize(data, lazy=lazy)) == data


class TestDetokenize:
    def test_simple(self):
        tokens = [Literal(ord("a")), Literal(ord("b")),
                  Match(3, 2)]
        assert detokenize(tokens) == b"ababa"

    def test_distance_before_start_rejected(self):
        with pytest.raises(ValueError):
            detokenize([Literal(1), Match(3, 5)])


@given(st.binary(max_size=4000))
@settings(max_examples=50, deadline=None)
def test_roundtrip_property(data):
    assert detokenize(tokenize(data)) == data


@given(st.binary(min_size=1, max_size=50))
@settings(max_examples=30, deadline=None)
def test_repeated_input_roundtrip(chunk):
    data = chunk * 30
    tokens = tokenize(data)
    assert detokenize(tokens) == data
    # Heavy repetition should produce at least one back-reference whenever
    # the chunk repetition creates a >= MIN_MATCH overlap.
    if len(data) >= len(chunk) + MIN_MATCH:
        assert any(isinstance(t, Match) for t in tokens)
